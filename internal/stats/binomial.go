package stats

import (
	"fmt"
	"math"
)

// This file holds the binomial interval estimators behind campaign
// early stopping: a fault-injection campaign observes k "successes"
// (SDCs, or DUEs) among n classified executions and needs a confidence
// interval on the underlying probability that stays honest at the
// edges (k == 0 and k == n occur constantly in well-separated strata).
// The Wilson score interval is the standard choice there — unlike the
// Wald interval it never collapses to zero width at the edges.

// NormalQuantile returns the p-quantile of the standard normal
// distribution (Beasley–Springer–Moro rational approximation). It
// panics outside (0, 1).
func NormalQuantile(p float64) float64 { return normQuantile(p) }

// zFor returns the two-sided critical value for a confidence level,
// e.g. 1.96 for 0.95.
func zFor(confidence float64) float64 {
	if confidence <= 0 || confidence >= 1 {
		panic(fmt.Sprintf("stats: confidence %v out of (0,1)", confidence))
	}
	return normQuantile(1 - (1-confidence)/2)
}

// WilsonCI returns the Wilson score interval for a binomial proportion
// after observing k successes in n trials, at the given confidence
// level. n == 0 returns the vacuous interval [0, 1]. The exact edge
// cases are preserved: k == 0 gives a zero lower bound and k == n a
// unit upper bound.
func WilsonCI(k, n int64, confidence float64) (lower, upper float64) {
	if k < 0 || n < 0 || k > n {
		panic(fmt.Sprintf("stats: Wilson interval of %d/%d", k, n))
	}
	z := zFor(confidence)
	if n == 0 {
		return 0, 1
	}
	lower, upper = wilsonBounds(float64(k)/float64(n), float64(n), z)
	if k == 0 {
		lower = 0
	}
	if k == n {
		upper = 1
	}
	return lower, upper
}

// wilsonBounds computes the Wilson interval for proportion p over n
// trials with critical value z, allowing fractional inputs (used by
// the sample-size inversion below).
func wilsonBounds(p, n, z float64) (lower, upper float64) {
	z2 := z * z
	center := (p + z2/(2*n)) / (1 + z2/n)
	half := z / (1 + z2/n) * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lower = center - half
	upper = center + half
	if lower < 0 {
		lower = 0
	}
	if upper > 1 {
		upper = 1
	}
	return lower, upper
}

// WilsonHalfWidth returns half the width of the Wilson interval — the
// quantity campaign early stopping compares against its target.
func WilsonHalfWidth(k, n int64, confidence float64) float64 {
	lo, hi := WilsonCI(k, n, confidence)
	return (hi - lo) / 2
}

// WaldCI returns the textbook normal-approximation interval
// p̂ ± z·sqrt(p̂(1-p̂)/n), clamped to [0, 1]. It is reported alongside
// Wilson for comparison; it degenerates to zero width at k == 0 and
// k == n, which is why it is never used for stopping decisions.
func WaldCI(k, n int64, confidence float64) (lower, upper float64) {
	if k < 0 || n < 0 || k > n {
		panic(fmt.Sprintf("stats: Wald interval of %d/%d", k, n))
	}
	if n == 0 {
		return 0, 1
	}
	z := zFor(confidence)
	p := float64(k) / float64(n)
	half := z * math.Sqrt(p*(1-p)/float64(n))
	lower = p - half
	upper = p + half
	if lower < 0 {
		lower = 0
	}
	if upper > 1 {
		upper = 1
	}
	return lower, upper
}

// WilsonSamplesFor returns the smallest number of uniform samples for
// which the Wilson interval around proportion p has at most the given
// half-width — the cost a uniform campaign pays for the confidence a
// stratified one reaches with fewer samples. It panics for a
// non-positive half-width or p outside [0, 1].
func WilsonSamplesFor(p, halfWidth, confidence float64) int64 {
	if halfWidth <= 0 {
		panic(fmt.Sprintf("stats: non-positive half-width %v", halfWidth))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: proportion %v out of [0,1]", p))
	}
	z := zFor(confidence)
	width := func(n float64) float64 {
		lo, hi := wilsonBounds(p, n, z)
		return (hi - lo) / 2
	}
	// The fractional-p Wilson half-width is monotone decreasing in n,
	// so binary search the threshold.
	var lo, hi int64 = 1, 1
	for width(float64(hi)) > halfWidth {
		hi *= 2
		if hi >= 1<<40 {
			break
		}
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if width(float64(mid)) <= halfWidth {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
