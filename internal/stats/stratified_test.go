package stats

import (
	"math"
	"testing"

	"mixedrel/internal/rng"
)

func TestPostStratifiedHomogeneous(t *testing.T) {
	// Property: when every stratum draws from the SAME Bernoulli(p),
	// the post-stratified estimator equals the pooled estimator under
	// proportional allocation (weights ∝ sample shares), and is close
	// for any allocation. Simulated with the repo RNG so the test is
	// deterministic.
	r := rng.New(42)
	for _, p := range []float64{0.05, 0.3, 0.7} {
		const total = 40000
		weights := []float64{0.4, 0.3, 0.2, 0.1}
		alloc := ProportionalAlloc(weights, total, 0)
		var pooledK, pooledN int64
		strata := make([]StratumCount, len(weights))
		for h, n := range alloc {
			sc := StratumCount{Weight: weights[h], N: int64(n)}
			for i := 0; i < n; i++ {
				if r.Float64() < p {
					sc.K++
				}
			}
			pooledK += sc.K
			pooledN += sc.N
			strata[h] = sc
		}
		pooled := float64(pooledK) / float64(pooledN)
		strat := PostStratified(strata)
		// Under exact proportional allocation the two estimators are
		// algebraically near-identical (they differ only through
		// largest-remainder rounding of the allocation).
		if math.Abs(strat-pooled) > 2e-4 {
			t.Errorf("p=%v: post-stratified %v vs pooled %v", p, strat, pooled)
		}
		// And both are consistent for p.
		if math.Abs(strat-p) > 0.02 {
			t.Errorf("p=%v: post-stratified estimate %v off", p, strat)
		}
		// On homogeneous strata the stratified variance matches the
		// binomial variance of the pooled design (no between-strata
		// component to remove).
		v := StratifiedVariance(strata)
		want := pooled * (1 - pooled) / float64(pooledN)
		if v <= 0 || math.Abs(v-want) > want/2 {
			t.Errorf("p=%v: stratified variance %v, pooled-equivalent %v", p, v, want)
		}
	}
}

func TestPostStratifiedSeparated(t *testing.T) {
	// Two deterministic strata: the estimate is the weighted mean and
	// the variance is exactly zero — the reduction stratification buys.
	strata := []StratumCount{
		{Weight: 0.75, N: 100, K: 0},
		{Weight: 0.25, N: 100, K: 100},
	}
	if got := PostStratified(strata); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("PostStratified = %v, want 0.25", got)
	}
	if v := StratifiedVariance(strata); v != 0 {
		t.Errorf("StratifiedVariance = %v, want 0", v)
	}
	lo, hi := StratifiedCI(strata, 0.95)
	if lo != 0.25 || hi != 0.25 {
		t.Errorf("StratifiedCI = [%v,%v], want the point [0.25,0.25]", lo, hi)
	}
}

func TestStratifiedVarianceUnsampledGuard(t *testing.T) {
	strata := []StratumCount{
		{Weight: 0.9, N: 50, K: 10},
		{Weight: 0.1, N: 0, K: 0}, // never observed
	}
	if v := StratifiedVariance(strata); !math.IsInf(v, 1) {
		t.Errorf("variance with unsampled stratum = %v, want +Inf", v)
	}
	if lo, hi := StratifiedCI(strata, 0.95); lo != 0 || hi != 1 {
		t.Errorf("CI with unsampled stratum = [%v,%v], want vacuous [0,1]", lo, hi)
	}
	// Zero-weight strata are exempt: they cover no probability mass.
	strata[1].Weight = 0
	if v := StratifiedVariance(strata); math.IsInf(v, 1) {
		t.Error("zero-weight unsampled stratum should not force +Inf")
	}
}

func TestPostStratifiedEmpty(t *testing.T) {
	if got := PostStratified(nil); got != 0 {
		t.Errorf("PostStratified(nil) = %v", got)
	}
	if got := PostStratified([]StratumCount{{Weight: 1}}); got != 0 {
		t.Errorf("PostStratified(all-empty) = %v", got)
	}
}

func allocSum(a []int) int {
	s := 0
	for _, n := range a {
		s += n
	}
	return s
}

func TestAllocExactBudget(t *testing.T) {
	weights := []float64{0.5, 0.25, 0.125, 0.125}
	for _, budget := range []int{0, 1, 7, 100, 1001} {
		got := ProportionalAlloc(weights, budget, 0)
		want := budget
		if want < 0 {
			want = 0
		}
		if allocSum(got) != want {
			t.Errorf("budget %d: allocation %v sums to %d", budget, got, allocSum(got))
		}
	}
	// Floors are honored when affordable...
	a := ProportionalAlloc(weights, 100, 10)
	for h, n := range a {
		if n < 10 {
			t.Errorf("floor violated: alloc[%d] = %d", h, n)
		}
	}
	if allocSum(a) != 100 {
		t.Errorf("floored allocation sums to %d", allocSum(a))
	}
	// ...and dropped when they exceed the budget.
	a = ProportionalAlloc(weights, 6, 10)
	if allocSum(a) != 6 {
		t.Errorf("over-floored allocation sums to %d", allocSum(a))
	}
}

func TestAllocNeymanSkew(t *testing.T) {
	// Equal weights, one high-variance stratum: Neyman shares follow
	// the scores.
	weights := []float64{0.25, 0.25, 0.25, 0.25}
	scores := []float64{0.5, 0.0, 0.0, 0.1}
	a := Alloc(weights, scores, 600, 0)
	if allocSum(a) != 600 {
		t.Fatalf("allocation %v sums to %d", a, allocSum(a))
	}
	if a[0] != 500 || a[3] != 100 {
		t.Errorf("Neyman allocation %v, want [500 0 0 100]", a)
	}
	// All-zero scores fall back to weights.
	a = Alloc(weights, []float64{0, 0, 0, 0}, 400, 0)
	for h, n := range a {
		if n != 100 {
			t.Errorf("zero-score fallback alloc[%d] = %d, want 100", h, n)
		}
	}
	// Zero-weight strata never receive samples.
	a = Alloc([]float64{0.5, 0, 0.5}, []float64{1, 1, 1}, 10, 2)
	if a[1] != 0 {
		t.Errorf("zero-weight stratum received %d samples", a[1])
	}
}

func TestAllocDeterministicTies(t *testing.T) {
	weights := []float64{0.25, 0.25, 0.25, 0.25}
	scores := []float64{1, 1, 1, 1}
	a := Alloc(weights, scores, 2, 0)
	// Two leftover samples, four identical remainders: ties must break
	// toward the lowest index, every time.
	if a[0] != 1 || a[1] != 1 || a[2] != 0 || a[3] != 0 {
		t.Errorf("tie-broken allocation %v, want [1 1 0 0]", a)
	}
	for i := 0; i < 10; i++ {
		b := Alloc(weights, scores, 2, 0)
		for h := range a {
			if a[h] != b[h] {
				t.Fatalf("allocation not deterministic: %v vs %v", a, b)
			}
		}
	}
}

func TestDeficitAllocSelfCorrects(t *testing.T) {
	weights := []float64{0.5, 0.5}
	scores := []float64{1, 1}
	// Stratum 0 was over-sampled earlier; the whole round should go to
	// stratum 1 until parity.
	a := DeficitAlloc(weights, scores, []int64{100, 0}, 60)
	if a[0] != 0 || a[1] != 60 {
		t.Errorf("deficit allocation %v, want [0 60]", a)
	}
	// Big enough budget rebalances past parity and splits the rest.
	a = DeficitAlloc(weights, scores, []int64{100, 0}, 300)
	if allocSum(a) != 300 {
		t.Fatalf("allocation %v sums to %d", a, allocSum(a))
	}
	if a[1]-a[0] != 100 {
		t.Errorf("deficit allocation %v does not equalize cumulative counts", a)
	}
	// Everyone at target: falls back to score allocation.
	a = DeficitAlloc(weights, scores, []int64{1000, 1000}, 10)
	if allocSum(a) != 10 {
		t.Errorf("fallback allocation %v sums to %d", a, allocSum(a))
	}
}
