package core

import (
	"fmt"

	"mixedrel/internal/arch"
	"mixedrel/internal/beam"
	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/fpga"
	"mixedrel/internal/metrics"
	"mixedrel/internal/report"
)

// fpgaWorkloads returns the two FPGA designs at paper scale.
func fpgaWorkloads() map[string]arch.Workload {
	return map[string]arch.Workload{
		"MNIST": arch.NewWorkload(mnistKernel(), 1, 1),
		"MxM":   arch.NewWorkload(gemmKernel(), fpgaMxMOpScale, fpgaMxMDataScale),
	}
}

// Table1 reproduces the Zynq execution-time table.
func Table1(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "table1",
		Title:   "Benchmark execution time on the Zynq-7000",
		Columns: []string{"Benchmark", "Double", "Single", "Half"},
		Notes: []string{
			"paper: MNIST 0.011/0.009/0.009 s; MxM 2.730/2.100/2.310 s",
			"shape: double slowest; half slower than single (LUT-mapped half multiplier)",
		},
	}
	d := fpga.New()
	for _, name := range []string{"MNIST", "MxM"} {
		w := fpgaWorkloads()[name]
		row := []string{name}
		for _, f := range []fp.Format{fp.Double, fp.Single, fp.Half} {
			m, err := mapOn(d, w, f)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtSec(m.Time))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig2 reproduces the FPGA resource-utilization figure.
func Fig2(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "fig2",
		Title:   "FPGA resource utilization",
		Columns: []string{"Design", "Format", "LUT", "DSP", "BRAM-bits"},
		Notes: []string{
			"paper: MxM area drops 45% double->single and 36% single->half;",
			"MNIST drops 53% then 26%",
		},
	}
	d := fpga.New()
	for _, name := range []string{"MxM", "MNIST"} {
		w := fpgaWorkloads()[name]
		for _, f := range []fp.Format{fp.Double, fp.Single, fp.Half} {
			m, err := mapOn(d, w, f)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, f.String(),
				fmt.Sprintf("%.0f", m.Resources["LUT"]),
				fmt.Sprintf("%.0f", m.Resources["DSP"]),
				fmt.Sprintf("%.0f", m.Resources["BRAMbits"]))
		}
	}
	return t, nil
}

// fpgaBeam runs the beam campaign for one FPGA design and format.
func fpgaBeam(cfg Config, name string, f fp.Format, keep bool, idx uint64) (*arch.Mapping, *beam.Result, error) {
	m, err := mapOn(fpga.New(), fpgaWorkloads()[name], f)
	if err != nil {
		return nil, nil, err
	}
	res, err := beam.Experiment{
		Mapping:     m,
		Trials:      cfg.trials(),
		Seed:        cfg.seedFor("fpga-"+name, idx),
		KeepOutputs: keep,
		Workers:     cfg.SampleWorkers,
	}.Run()
	return m, res, err
}

// Fig3 reproduces the FPGA FIT figure, splitting MNIST errors into
// critical (classification changed) and tolerable.
func Fig3(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "fig3",
		Title:   "FIT of MxM and MNIST on the FPGA (a.u.)",
		Columns: []string{"Design", "Format", "FIT-SDC", "FIT-critical", "FIT-tolerable", "critical-share", "FIT-DUE"},
		Notes: []string{
			"paper: FIT decreases with precision for both designs; MNIST FIT below MxM",
			"despite larger area (CNN masking); MNIST critical share 5%/14%/20% for D/S/H;",
			"no DUEs were ever observed on the FPGA",
		},
	}
	mnist := mnistKernel()
	names := []string{"MxM", "MNIST"}
	formats := []fp.Format{fp.Double, fp.Single, fp.Half}
	return runGrid(cfg, t, len(names)*len(formats), func(i int) ([][]string, error) {
		name, fi := names[i/len(formats)], i%len(formats)
		f := formats[fi]
		_, res, err := fpgaBeam(cfg, name, f, name == "MNIST", uint64(fi))
		if err != nil {
			return nil, err
		}
		critical, tolerable := res.FITSDC, 0.0
		share := 1.0
		if name == "MNIST" {
			golden := exec.Artifact(mnist, f, "", nil).Golden()
			crit := metrics.ClassifyMNIST(mnist, golden, res.Outputs)
			share = crit.CriticalFraction()
			critical = res.FITSDC * share
			tolerable = res.FITSDC - critical
		}
		return [][]string{{name, f.String(), fmtAU(res.FITSDC), fmtAU(critical),
			fmtAU(tolerable), fmtPct(share), fmtAU(res.FITDUE)}}, nil
	})
}

// Fig4 reproduces the FPGA TRE sweep for MxM.
func Fig4(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "fig4",
		Title:   "FIT reduction vs tolerated relative error, MxM on the FPGA",
		Columns: []string{"Format", "TRE", "FIT (a.u.)", "reduction"},
		Notes: []string{
			"paper: at TRE 0.1% double sheds ~63% of its errors, single much less,",
			"half almost none — faults in lower precisions corrupt larger value shares",
		},
	}
	formats := []fp.Format{fp.Double, fp.Single, fp.Half}
	return runGrid(cfg, t, len(formats), func(fi int) ([][]string, error) {
		f := formats[fi]
		_, res, err := fpgaBeam(cfg, "MxM", f, false, uint64(100+fi))
		if err != nil {
			return nil, err
		}
		var rows [][]string
		for _, p := range metrics.TRECurve(res.FITSDC, res.RelErrs, nil) {
			rows = append(rows, []string{f.String(), fmtTRE(p.TRE), fmtAU(p.FIT), fmtPct(p.Reduction)})
		}
		return rows, nil
	})
}

// Fig5 reproduces the FPGA MEBF figure.
func Fig5(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "fig5",
		Title:   "FPGA mean executions between failures (a.u.)",
		Columns: []string{"Design", "Format", "MEBF", "vs single"},
		Notes: []string{
			"paper: reducing precision raises MEBF; half MxM completes ~33% more",
			"executions between errors than single, half MNIST ~26% more",
		},
	}
	names := []string{"MxM", "MNIST"}
	formats := []fp.Format{fp.Double, fp.Single, fp.Half}
	mebfs := make([]float64, len(names)*len(formats))
	err := exec.ForEach(cfg.gridWorkers(), len(mebfs), func(i int) error {
		name, fi := names[i/len(formats)], i%len(formats)
		m, res, err := fpgaBeam(cfg, name, formats[fi], false, uint64(200+fi))
		if err != nil {
			return err
		}
		mebfs[i] = metrics.MEBF(res.FITSDC, m.Time)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ni, name := range names {
		base := ni * len(formats)
		for fi, f := range formats {
			t.AddRow(name, f.String(), fmt.Sprintf("%.3g", mebfs[base+fi]),
				metrics.Ratio(mebfs[base+fi], mebfs[base+1])) // vs single
		}
	}
	return t, nil
}
