package core

import (
	"fmt"

	"mixedrel/internal/arch"
	"mixedrel/internal/beam"
	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/gpu"
	"mixedrel/internal/inject"
	"mixedrel/internal/kernels"
	"mixedrel/internal/metrics"
	"mixedrel/internal/report"
)

// gpuWorkloads returns the GPU benchmarks at paper scale.
func gpuWorkloads() map[string]arch.Workload {
	addK := microKernel(kernels.MicroADD)
	mulK := microKernel(kernels.MicroMUL)
	fmaK := microKernel(kernels.MicroFMA)
	lava := lavaKernel()
	gemm := gemmKernel()
	yolo := yoloKernel()
	return map[string]arch.Workload{
		"Micro-ADD": arch.NewWorkload(addK, opScaleTo(addK, gpuMicroOps), 1),
		"Micro-MUL": arch.NewWorkload(mulK, opScaleTo(mulK, gpuMicroOps), 1),
		"Micro-FMA": arch.NewWorkload(fmaK, opScaleTo(fmaK, gpuMicroOps), 1),
		"LavaMD":    arch.NewWorkload(lava, opScaleTo(lava, gpuLavaOps), 4e4),
		"MxM":       arch.NewWorkload(gemm, opScaleTo(gemm, gpuMxMOps), 1.6e4),
		"YOLOv3":    arch.NewWorkload(yolo, opScaleTo(yolo, gpuYOLOOps), 500),
	}
}

var gpuMicroOrder = []string{"Micro-MUL", "Micro-ADD", "Micro-FMA"}
var gpuFormats = []fp.Format{fp.Double, fp.Single, fp.Half}

// Table3 reproduces the Volta execution-time table.
func Table3(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "table3",
		Title:   "Benchmark execution time on the Volta GPU",
		Columns: []string{"Benchmark", "Double", "Single", "Half"},
		Notes: []string{
			"paper: micros 6.0/3.0/2.25 s (8/4/3 cycles per op); LavaMD 1.071/0.554/",
			"0.291 s; MxM 2.327/1.909/1.180 s; YOLOv3 0.133/0.079/0.283 s (half pays",
			"per-layer conversion overhead)",
		},
	}
	d := gpu.New()
	for _, name := range []string{"Micro-MUL", "Micro-ADD", "Micro-FMA", "LavaMD", "MxM", "YOLOv3"} {
		row := []string{name}
		for _, f := range gpuFormats {
			m, err := mapOn(d, gpuWorkloads()[name], f)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtSec(m.Time))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// gpuBeam runs the beam campaign for one GPU benchmark and format.
func gpuBeam(cfg Config, name string, f fp.Format, keep bool, idx uint64) (*arch.Mapping, *beam.Result, error) {
	m, err := mapOn(gpu.New(), gpuWorkloads()[name], f)
	if err != nil {
		return nil, nil, err
	}
	res, err := beam.Experiment{
		Mapping:     m,
		Trials:      cfg.trials(),
		Seed:        cfg.seedFor("gpu-"+name, idx),
		KeepOutputs: keep,
		Workers:     cfg.SampleWorkers,
	}.Run()
	return m, res, err
}

// gpuFITTable renders SDC/DUE FIT rows for a set of benchmarks.
func gpuFITTable(cfg Config, id, title string, names []string, notes []string, idxBase uint64) (*report.Table, error) {
	t := &report.Table{
		ID:      id,
		Title:   title,
		Columns: []string{"Benchmark", "Format", "FIT-SDC", "FIT-DUE"},
		Notes:   notes,
	}
	return runGrid(cfg, t, len(names)*len(gpuFormats), func(i int) ([][]string, error) {
		ni, fi := i/len(gpuFormats), i%len(gpuFormats)
		name, f := names[ni], gpuFormats[fi]
		_, res, err := gpuBeam(cfg, name, f, false, idxBase+uint64(ni*10+fi))
		if err != nil {
			return nil, err
		}
		return [][]string{{name, f.String(), fmtAU(res.FITSDC), fmtAU(res.FITDUE)}}, nil
	})
}

// Fig10a reproduces the GPU microbenchmark FIT figure.
func Fig10a(cfg Config) (*report.Table, error) {
	return gpuFITTable(cfg, "fig10a", "GPU FIT, microbenchmarks (a.u.)", gpuMicroOrder,
		[]string{
			"paper: MUL and FMA highest for double (core complexity); ADD inverted —",
			"double lowest, single ~ half (core count dominates the simple adder);",
			"FMA > MUL > ADD at fixed precision; micro DUE ~1/10 of realistic codes",
		}, 0)
}

// Fig10b reproduces the GPU LavaMD/MxM FIT figure.
func Fig10b(cfg Config) (*report.Table, error) {
	return gpuFITTable(cfg, "fig10b", "GPU FIT, LavaMD and MxM (a.u.)", []string{"LavaMD", "MxM"},
		[]string{
			"paper: MxM well above LavaMD (memory-bound, data exposed in caches);",
			"LavaMD follows the MUL trend, MxM the FMA trend; MxM double DUE ~2x half",
		}, 1000)
}

// Fig10c reproduces the GPU YOLO FIT figure.
func Fig10c(cfg Config) (*report.Table, error) {
	return gpuFITTable(cfg, "fig10c", "GPU FIT, YOLOv3 (a.u.)", []string{"YOLOv3"},
		[]string{
			"paper: trend similar to MUL/FMA with half significantly lowest;",
			"object-detection CNNs show a much higher DUE probability",
		}, 2000)
}

// gpuTRETable renders TRE sweeps for a set of benchmarks.
func gpuTRETable(cfg Config, id, title string, names []string, notes []string, idxBase uint64) (*report.Table, error) {
	t := &report.Table{
		ID:      id,
		Title:   title,
		Columns: []string{"Benchmark", "Format", "TRE", "FIT (a.u.)", "reduction"},
		Notes:   notes,
	}
	return runGrid(cfg, t, len(names)*len(gpuFormats), func(i int) ([][]string, error) {
		ni, fi := i/len(gpuFormats), i%len(gpuFormats)
		name, f := names[ni], gpuFormats[fi]
		_, res, err := gpuBeam(cfg, name, f, false, idxBase+uint64(ni*10+fi))
		if err != nil {
			return nil, err
		}
		var rows [][]string
		for _, p := range metrics.TRECurve(res.FITSDC, res.RelErrs, nil) {
			rows = append(rows, []string{name, f.String(), fmtTRE(p.TRE), fmtAU(p.FIT), fmtPct(p.Reduction)})
		}
		return rows, nil
	})
}

// Fig11a reproduces the GPU microbenchmark TRE figure.
func Fig11a(cfg Config) (*report.Table, error) {
	return gpuTRETable(cfg, "fig11a", "GPU FIT reduction vs TRE, microbenchmarks",
		gpuMicroOrder, []string{
			"paper: double benefits from the greatest reduction; half ~ single;",
			"ADD and FMA reduce less than MUL (operand alignment before addition)",
		}, 3000)
}

// Fig11b reproduces the GPU realistic-code TRE figure.
func Fig11b(cfg Config) (*report.Table, error) {
	return gpuTRETable(cfg, "fig11b", "GPU FIT reduction vs TRE, LavaMD and MxM",
		[]string{"LavaMD", "MxM"}, []string{
			"paper: LavaMD criticality correlates with MUL; for MxM half is the most",
			"critical data type, then single, then double",
		}, 4000)
}

// Fig11c reproduces the YOLO criticality figure.
func Fig11c(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "fig11c",
		Title:   "YOLOv3 SDC criticality on the GPU",
		Columns: []string{"Format", "SDCs", "tolerable", "detection-changed", "classification-changed"},
		Notes: []string{
			"paper: half and single show a higher share of critical errors than double;",
			"detection (box) errors depend less on the data type than class flips",
		},
	}
	y := yoloKernel()
	return runGrid(cfg, t, len(gpuFormats), func(fi int) ([][]string, error) {
		f := gpuFormats[fi]
		_, res, err := gpuBeam(cfg, "YOLOv3", f, true, uint64(5000+fi))
		if err != nil {
			return nil, err
		}
		golden := exec.Artifact(y, f, "", nil).Golden()
		crit := metrics.ClassifyYOLO(y, golden, res.Outputs)
		tf, df, cf := crit.Fractions()
		return [][]string{{f.String(), fmt.Sprintf("%d", crit.SDCs), fmtPct(tf), fmtPct(df), fmtPct(cf)}}, nil
	})
}

// Fig12 reproduces the GPU AVF figure: single-bit flips on a randomly
// selected in-flight operation, gated by the per-core vulnerability of
// the executing precision.
func Fig12(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "fig12",
		Title:   "AVF of the microbenchmarks on the GPU",
		Columns: []string{"Benchmark", "Format", "core-vuln", "P(SDC|corrupt)", "AVF"},
		Notes: []string{
			"paper: single and half share the FP32 core and an AVF; double's bigger",
			"core is more vulnerable per operation",
		},
	}
	d := gpu.New()
	return runGrid(cfg, t, len(gpuMicroOrder)*len(gpuFormats), func(i int) ([][]string, error) {
		name, fi := gpuMicroOrder[i/len(gpuFormats)], i%len(gpuFormats)
		f := gpuFormats[fi]
		w := gpuWorkloads()[name]
		m, err := mapOn(d, w, f)
		if err != nil {
			return nil, err
		}
		vuln := m.ExposureFor(arch.FunctionalUnit).Vuln()
		c := inject.Campaign{
			Kernel:  w.Kernel,
			Format:  f,
			Faults:  cfg.faults(),
			Seed:    cfg.seedFor("gpu-avf-"+name, uint64(fi)),
			Sites:   []inject.Site{inject.SiteOperation},
			Workers: cfg.SampleWorkers,
		}
		res, err := c.Run()
		if err != nil {
			return nil, err
		}
		avf := vuln * res.PVF
		return [][]string{{name, f.String(), fmt.Sprintf("%.2f", vuln),
			fmt.Sprintf("%.3f", res.PVF), fmt.Sprintf("%.3f", avf)}}, nil
	})
}

// Fig13 reproduces the GPU MEBF figure.
func Fig13(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "fig13",
		Title:   "GPU mean executions between failures (a.u.)",
		Columns: []string{"Benchmark", "Format", "MEBF", "vs double"},
		Notes: []string{
			"paper: MEBF rises as precision drops for every benchmark — lower FIT",
			"combines with shorter execution times",
		},
	}
	names := []string{"Micro-MUL", "Micro-ADD", "Micro-FMA", "LavaMD", "MxM", "YOLOv3"}
	mebfs := make([]float64, len(names)*len(gpuFormats))
	err := exec.ForEach(cfg.gridWorkers(), len(mebfs), func(i int) error {
		ni, fi := i/len(gpuFormats), i%len(gpuFormats)
		m, res, err := gpuBeam(cfg, names[ni], gpuFormats[fi], false, uint64(6000+ni*10+fi))
		if err != nil {
			return err
		}
		mebfs[i] = metrics.MEBF(res.FITSDC, m.Time)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ni, name := range names {
		base := ni * len(gpuFormats)
		for fi, f := range gpuFormats {
			t.AddRow(name, f.String(), fmt.Sprintf("%.3g", mebfs[base+fi]),
				metrics.Ratio(mebfs[base+fi], mebfs[base])) // vs double
		}
	}
	return t, nil
}
