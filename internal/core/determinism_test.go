package core

import (
	"bytes"
	"testing"

	"mixedrel/internal/exec"
)

// TestGridParallelismPreservesTables verifies the central determinism
// claim of the execution engine: cross-configuration parallelism
// (Config.Workers plus the process scheduler bound) never changes a
// rendered table, because every campaign derives its own seed and rows
// are assembled in job order.
func TestGridParallelismPreservesTables(t *testing.T) {
	old := exec.MaxWorkers()
	defer exec.SetMaxWorkers(old)

	render := func(id string, cfg Config) []byte {
		t.Helper()
		d, ok := Get(id)
		if !ok {
			t.Fatalf("unknown experiment %q", id)
		}
		tab, err := d.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var buf bytes.Buffer
		if err := tab.WriteASCII(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	base := Config{Seed: 2019, Trials: 40, Faults: 40, Quick: true}
	for _, id := range []string{"fig3", "fig7", "fig10a", "ext-mbu"} {
		exec.SetMaxWorkers(1)
		seq := base
		seq.Workers = 1
		seqOut := render(id, seq)

		exec.SetMaxWorkers(8)
		par := base
		par.Workers = 8
		parOut := render(id, par)

		if !bytes.Equal(seqOut, parOut) {
			t.Errorf("%s: rendered table differs between Workers=1 and Workers=8\n--- sequential ---\n%s--- parallel ---\n%s",
				id, seqOut, parOut)
		}
	}
}
