package core

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"mixedrel/internal/report"
)

// Experiments are deterministic, so each is run at most once per test
// binary and shared across assertions.
var (
	expMu    sync.Mutex
	expCache = map[string]*report.Table{}
)

func runExp(t *testing.T, id string) *report.Table {
	t.Helper()
	expMu.Lock()
	defer expMu.Unlock()
	if tbl, ok := expCache[id]; ok {
		return tbl
	}
	d, ok := Get(id)
	if !ok {
		t.Fatalf("unknown experiment %q", id)
	}
	cfg := DefaultConfig()
	cfg.Quick = true
	tbl, err := d.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s: empty table", id)
	}
	expCache[id] = tbl
	return tbl
}

// cell returns the named column of the first row matching the given
// leading cells.
func cell(t *testing.T, tbl *report.Table, column string, match ...string) string {
	t.Helper()
	ci := -1
	for i, c := range tbl.Columns {
		if c == column {
			ci = i
			break
		}
	}
	if ci < 0 {
		t.Fatalf("%s: no column %q in %v", tbl.ID, column, tbl.Columns)
	}
rows:
	for _, row := range tbl.Rows {
		for i, m := range match {
			if row[i] != m {
				continue rows
			}
		}
		return row[ci]
	}
	t.Fatalf("%s: no row matching %v", tbl.ID, match)
	return ""
}

// num parses a cell that may carry "s" or "%" suffixes.
func num(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "s"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func val(t *testing.T, id, column string, match ...string) float64 {
	t.Helper()
	return num(t, cell(t, runExp(t, id), column, match...))
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig2", "fig3", "fig4", "fig5", "table2", "fig6",
		"fig7", "fig8", "fig9", "table3", "fig10a", "fig10b", "fig10c",
		"fig11a", "fig11b", "fig11c", "fig12", "fig13",
		"ext-bf16", "ext-mbu", "ext-accum", "ext-mitigation", "ext-solver",
		"ext-due"}
	if len(Experiments) != len(want) {
		t.Fatalf("%d experiments, want %d", len(Experiments), len(want))
	}
	for i, id := range want {
		if Experiments[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, Experiments[i].ID, id)
		}
		if _, ok := Get(id); !ok {
			t.Errorf("Get(%q) failed", id)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get of unknown id succeeded")
	}
}

func TestTable1Shape(t *testing.T) {
	// Paper Table 1: MxM 2.730/2.100/2.310 — double slowest, half slower
	// than single; values within 15% of the paper's.
	d := val(t, "table1", "Double", "MxM")
	s := val(t, "table1", "Single", "MxM")
	h := val(t, "table1", "Half", "MxM")
	if !(d > h && h > s) {
		t.Errorf("MxM times (%v, %v, %v): want D > H > S", d, s, h)
	}
	for name, got := range map[string]struct{ got, want float64 }{
		"D": {d, 2.730}, "S": {s, 2.100}, "H": {h, 2.310},
	} {
		if rel := abs(got.got-got.want) / got.want; rel > 0.15 {
			t.Errorf("MxM %s time %.3f vs paper %.3f (%.0f%% off)", name, got.got, got.want, 100*rel)
		}
	}
	if md := val(t, "table1", "Double", "MNIST"); md < 0.005 || md > 0.02 {
		t.Errorf("MNIST double time %.4f, paper 0.011", md)
	}
}

func TestFig2Shape(t *testing.T) {
	// Area decreases with precision for both designs; the double->single
	// drop exceeds single->half for MNIST too (qualitatively).
	for _, design := range []string{"MxM", "MNIST"} {
		d := val(t, "fig2", "LUT", design, "double")
		s := val(t, "fig2", "LUT", design, "single")
		h := val(t, "fig2", "LUT", design, "half")
		if !(d > s && s > h) {
			t.Errorf("%s LUTs (%v, %v, %v) not decreasing", design, d, s, h)
		}
	}
	// MNIST needs more resources than MxM (paper Section 4.1).
	if !(val(t, "fig2", "LUT", "MNIST", "single") > val(t, "fig2", "LUT", "MxM", "single")) {
		t.Error("MNIST should use more resources than MxM")
	}
}

func TestFig3Shape(t *testing.T) {
	// FIT decreases with precision for both designs.
	for _, design := range []string{"MxM", "MNIST"} {
		d := val(t, "fig3", "FIT-SDC", design, "double")
		s := val(t, "fig3", "FIT-SDC", design, "single")
		h := val(t, "fig3", "FIT-SDC", design, "half")
		if !(d > s && s > h) {
			t.Errorf("%s FIT (%v, %v, %v) not decreasing with precision", design, d, s, h)
		}
	}
	// MNIST FIT below MxM despite larger area (CNN masking).
	for _, f := range []string{"double", "single", "half"} {
		if !(val(t, "fig3", "FIT-SDC", "MNIST", f) < val(t, "fig3", "FIT-SDC", "MxM", f)) {
			t.Errorf("MNIST FIT should sit below MxM at %s", f)
		}
	}
	// Critical share grows as precision shrinks (paper: 5/14/20%).
	cd := val(t, "fig3", "critical-share", "MNIST", "double")
	cs := val(t, "fig3", "critical-share", "MNIST", "single")
	ch := val(t, "fig3", "critical-share", "MNIST", "half")
	if !(cd < cs && cs < ch) {
		t.Errorf("MNIST critical shares (%v%%, %v%%, %v%%) not increasing", cd, cs, ch)
	}
	// No DUEs on the FPGA, ever.
	for _, design := range []string{"MxM", "MNIST"} {
		for _, f := range []string{"double", "single", "half"} {
			if due := val(t, "fig3", "FIT-DUE", design, f); due != 0 {
				t.Errorf("%s/%s: FPGA DUE FIT %v != 0", design, f, due)
			}
		}
	}
}

func TestFig4Shape(t *testing.T) {
	// At TRE 0.1%, the FIT reduction orders double > single > half.
	d := val(t, "fig4", "reduction", "double", "0.1%")
	s := val(t, "fig4", "reduction", "single", "0.1%")
	h := val(t, "fig4", "reduction", "half", "0.1%")
	if !(d > s && s > h) {
		t.Errorf("TRE 0.1%% reductions (%v, %v, %v) not ordered D > S > H", d, s, h)
	}
	// Double sheds more than half of its errors (paper: ~63%).
	if d < 40 {
		t.Errorf("double reduction at 0.1%% only %v%%, paper reports ~63%%", d)
	}
}

func TestFig5Shape(t *testing.T) {
	// MEBF rises as precision drops for both designs.
	for _, design := range []string{"MxM", "MNIST"} {
		d := val(t, "fig5", "MEBF", design, "double")
		s := val(t, "fig5", "MEBF", design, "single")
		h := val(t, "fig5", "MEBF", design, "half")
		if !(h > s && s > d) {
			t.Errorf("%s MEBF (%v, %v, %v) not increasing as precision drops", design, d, s, h)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	for name, want := range map[string][2]float64{
		"LavaMD": {1.307, 0.801},
		"MxM":    {10.612, 12.028},
		"LUD":    {1.264, 0.818},
	} {
		d := val(t, "table2", "Double", name)
		s := val(t, "table2", "Single", name)
		if abs(d-want[0])/want[0] > 0.1 || abs(s-want[1])/want[1] > 0.1 {
			t.Errorf("%s times (%v, %v) vs paper (%v, %v)", name, d, s, want[0], want[1])
		}
	}
}

func TestFig6Shape(t *testing.T) {
	// Single SDC FIT above double for LavaMD and MxM; LUD similar.
	for _, name := range []string{"LavaMD", "MxM"} {
		d := val(t, "fig6", "FIT-SDC", name, "double")
		s := val(t, "fig6", "FIT-SDC", name, "single")
		if !(s > d) {
			t.Errorf("%s: single SDC FIT %v not above double %v", name, s, d)
		}
	}
	dl := val(t, "fig6", "FIT-SDC", "LUD", "double")
	sl := val(t, "fig6", "FIT-SDC", "LUD", "single")
	if abs(sl-dl)/dl > 0.15 {
		t.Errorf("LUD SDC FIT should be similar across precisions: %v vs %v", dl, sl)
	}
}

func TestFig7Shape(t *testing.T) {
	// PVF is similar for single and double on every code.
	for _, name := range []string{"LavaMD", "MxM", "LUD"} {
		d := val(t, "fig7", "PVF", name, "double")
		s := val(t, "fig7", "PVF", name, "single")
		if abs(d-s) > 0.12 {
			t.Errorf("%s: PVF double %v vs single %v differ too much", name, d, s)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	// Double reduces at least as fast as single for LUD and MxM at 1%.
	for _, name := range []string{"MxM", "LUD"} {
		d := val(t, "fig8", "reduction", name, "double", "1%")
		s := val(t, "fig8", "reduction", name, "single", "1%")
		if d < s-5 { // percent points; allow statistical slack
			t.Errorf("%s: double reduction %v%% well below single %v%%", name, d, s)
		}
	}
	// The paper's LavaMD inversion: single reduces faster than double —
	// faults in the longer table-driven double transcendental's integer
	// sequencing state produce power-of-two-scaled errors no tolerance
	// absorbs.
	dl := val(t, "fig8", "reduction", "LavaMD", "double", "1%")
	sl := val(t, "fig8", "reduction", "LavaMD", "single", "1%")
	if !(sl > dl) {
		t.Errorf("LavaMD: single reduction %v%% not above double %v%% (paper inversion)", sl, dl)
	}
}

func TestFig9Shape(t *testing.T) {
	// Single wins MEBF for LavaMD and LUD, double for MxM.
	for _, name := range []string{"LavaMD", "LUD"} {
		d := val(t, "fig9", "MEBF", name, "double")
		s := val(t, "fig9", "MEBF", name, "single")
		if !(s > d) {
			t.Errorf("%s: single MEBF %v should beat double %v", name, s, d)
		}
	}
	if !(val(t, "fig9", "MEBF", "MxM", "double") > val(t, "fig9", "MEBF", "MxM", "single")) {
		t.Error("MxM: double MEBF should beat single on the Phi")
	}
}

func TestTable3Shape(t *testing.T) {
	for name, want := range map[string][3]float64{
		"Micro-MUL": {6.001, 3.021, 2.232},
		"Micro-ADD": {5.993, 3.024, 2.255},
		"Micro-FMA": {5.998, 3.019, 2.260},
		"LavaMD":    {1.071, 0.554, 0.291},
		"MxM":       {2.327, 1.909, 1.180},
		"YOLOv3":    {0.133, 0.079, 0.283},
	} {
		d := val(t, "table3", "Double", name)
		s := val(t, "table3", "Single", name)
		h := val(t, "table3", "Half", name)
		for i, got := range []float64{d, s, h} {
			if rel := abs(got-want[i]) / want[i]; rel > 0.12 {
				t.Errorf("%s col %d: %.3f vs paper %.3f", name, i, got, want[i])
			}
		}
	}
}

func TestFig10aShape(t *testing.T) {
	fit := func(name, f string) float64 { return val(t, "fig10a", "FIT-SDC", name, f) }
	// MUL and FMA: D > S > H.
	for _, name := range []string{"Micro-MUL", "Micro-FMA"} {
		if !(fit(name, "double") > fit(name, "single") && fit(name, "single") > fit(name, "half")) {
			t.Errorf("%s FIT not ordered D > S > H", name)
		}
	}
	// ADD inverted: double lowest.
	if !(fit("Micro-ADD", "double") < fit("Micro-ADD", "single") &&
		fit("Micro-ADD", "double") < fit("Micro-ADD", "half")) {
		t.Error("ADD: double should have the lowest FIT")
	}
	// FMA > MUL > ADD at each precision.
	for _, f := range []string{"double", "single", "half"} {
		if !(fit("Micro-FMA", f) > fit("Micro-MUL", f) && fit("Micro-MUL", f) > fit("Micro-ADD", f)) {
			t.Errorf("%s: want FMA > MUL > ADD", f)
		}
	}
}

func TestFig10bShape(t *testing.T) {
	// MxM well above LavaMD; FIT decreasing with precision for both.
	for _, f := range []string{"double", "single", "half"} {
		if !(val(t, "fig10b", "FIT-SDC", "MxM", f) > val(t, "fig10b", "FIT-SDC", "LavaMD", f)) {
			t.Errorf("%s: MxM FIT should exceed LavaMD", f)
		}
	}
	for _, name := range []string{"LavaMD", "MxM"} {
		d := val(t, "fig10b", "FIT-SDC", name, "double")
		h := val(t, "fig10b", "FIT-SDC", name, "half")
		if !(d > h) {
			t.Errorf("%s: double FIT %v not above half %v", name, d, h)
		}
	}
}

func TestFig10cShape(t *testing.T) {
	d := val(t, "fig10c", "FIT-SDC", "YOLOv3", "double")
	s := val(t, "fig10c", "FIT-SDC", "YOLOv3", "single")
	h := val(t, "fig10c", "FIT-SDC", "YOLOv3", "half")
	if !(d > s && s > h) {
		t.Errorf("YOLO FIT (%v, %v, %v) not decreasing", d, s, h)
	}
	// Half is *significantly* lower (paper's wording).
	if !(h < 0.5*d) {
		t.Errorf("half FIT %v not significantly below double %v", h, d)
	}
}

func TestFig11aShape(t *testing.T) {
	// Double benefits from the greatest reduction at 0.1% for each op.
	for _, name := range []string{"Micro-MUL", "Micro-ADD", "Micro-FMA"} {
		d := val(t, "fig11a", "reduction", name, "double", "0.1%")
		h := val(t, "fig11a", "reduction", name, "half", "0.1%")
		if !(d > h) {
			t.Errorf("%s: double reduction %v%% not above half %v%%", name, d, h)
		}
	}
}

func TestFig11bShape(t *testing.T) {
	for _, name := range []string{"LavaMD", "MxM"} {
		d := val(t, "fig11b", "reduction", name, "double", "1%")
		h := val(t, "fig11b", "reduction", name, "half", "1%")
		if !(d > h) {
			t.Errorf("%s: double reduction %v%% not above half %v%%", name, d, h)
		}
	}
}

func TestFig11cShape(t *testing.T) {
	// Critical share (detection + classification changes) grows as
	// precision drops.
	crit := func(f string) float64 {
		return val(t, "fig11c", "detection-changed", f) + val(t, "fig11c", "classification-changed", f)
	}
	if !(crit("half") > crit("double")) {
		t.Errorf("half critical share %v%% not above double %v%%", crit("half"), crit("double"))
	}
}

func TestFig12Shape(t *testing.T) {
	for _, name := range []string{"Micro-MUL", "Micro-ADD", "Micro-FMA"} {
		d := val(t, "fig12", "AVF", name, "double")
		s := val(t, "fig12", "AVF", name, "single")
		h := val(t, "fig12", "AVF", name, "half")
		if !(d > s) {
			t.Errorf("%s: double AVF %v not above single %v", name, d, s)
		}
		if abs(s-h) > 0.05 {
			t.Errorf("%s: single %v and half %v AVF should match (same core)", name, s, h)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	// MEBF rises as precision drops for every benchmark except YOLO-half
	// (whose conversion overhead makes it slower than single; it must
	// still beat double).
	for _, name := range []string{"Micro-MUL", "Micro-ADD", "Micro-FMA", "LavaMD", "MxM"} {
		d := val(t, "fig13", "MEBF", name, "double")
		s := val(t, "fig13", "MEBF", name, "single")
		h := val(t, "fig13", "MEBF", name, "half")
		if !(h > s && s > d) {
			t.Errorf("%s MEBF (%v, %v, %v) not increasing as precision drops", name, d, s, h)
		}
	}
	if !(val(t, "fig13", "MEBF", "YOLOv3", "half") > val(t, "fig13", "MEBF", "YOLOv3", "double")) {
		t.Error("YOLO: half MEBF should still beat double")
	}
}

func TestRunAllQuickSucceeds(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep skipped in -short")
	}
	// Every experiment already ran (and is cached) via the shape tests;
	// this exercises the RunAll path and the renderer.
	cfg := DefaultConfig()
	cfg.Quick = true
	cfg.Trials = 60
	cfg.Faults = 60
	var sb strings.Builder
	// A second, smaller pass through the public entry point.
	if err := RunAll(cfg, &sb); err != nil {
		t.Fatal(err)
	}
	for _, d := range Experiments {
		if !strings.Contains(sb.String(), "["+d.ID+"]") {
			t.Errorf("RunAll output missing %s", d.ID)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.trials() != 2000 || c.faults() != 2000 {
		t.Errorf("zero config trials/faults = %d/%d, want 2000", c.trials(), c.faults())
	}
	c.Quick = true
	if c.trials() != 250 || c.faults() != 250 {
		t.Errorf("quick trials/faults = %d/%d, want 250", c.trials(), c.faults())
	}
	one := Config{Seed: 1}
	a := one.seedFor("x", 0)
	b := one.seedFor("y", 0)
	if a == b {
		t.Error("seedFor should separate experiment ids")
	}
	if one.seedFor("x", 0) != a {
		t.Error("seedFor not deterministic")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
