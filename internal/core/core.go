// Package core is the reproduction harness: one experiment definition
// per table and figure of the paper, each building the relevant
// workloads, mapping them onto the device models, running beam and
// fault-injection campaigns, and rendering a report table with the
// measured values next to the paper's expected shape.
//
// Experiment identifiers follow the paper: table1..table3 are the
// execution-time tables, fig2..fig13 the figures. See DESIGN.md for the
// full index and EXPERIMENTS.md for measured-vs-paper results.
package core

import (
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"time"

	"mixedrel/internal/arch"
	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
	"mixedrel/internal/report"
)

// Config controls campaign sizes and determinism.
type Config struct {
	// Seed drives every campaign's sampling. Fixed seed, identical
	// output.
	Seed uint64
	// Trials is the number of simulated beam strikes per configuration.
	Trials int
	// Faults is the number of injected faults per configuration (the
	// paper uses >= 2000).
	Faults int
	// Quick shrinks campaigns for fast test runs.
	Quick bool
	// Workers bounds the cross-configuration parallelism: how many
	// (benchmark x format) campaigns an experiment — and how many
	// experiments ReproduceAll — may run concurrently on the shared
	// scheduler. Every campaign derives an independent seed via
	// seedFor, so this parallelism never changes any table. Zero
	// defaults to the scheduler bound (exec.MaxWorkers); 1 forces
	// sequential execution.
	Workers int
	// SampleWorkers > 1 additionally parallelizes sampling inside each
	// campaign (per-trial random streams; deterministic in Seed, but a
	// different — equally valid — sample than the sequential default,
	// which 0 or 1 select).
	SampleWorkers int
	// CheckpointDir, when set, makes checkpoint-aware experiments
	// (ext-due) journal their campaigns there for crash-tolerant
	// resume: an interrupted grid re-run with the same configuration
	// completes only the missing samples and renders byte-identical
	// tables. Checkpointed campaigns use per-sample random streams, so
	// their tables differ from (equally valid) non-checkpointed runs.
	CheckpointDir string
	// CheckpointLimit, when positive, bounds how many new samples each
	// checkpointed campaign classifies per invocation before returning
	// exec.ErrPartial — a deterministic interruption for resume tests.
	CheckpointLimit int
}

// DefaultConfig returns the paper-sized campaign configuration.
func DefaultConfig() Config {
	return Config{Seed: 2019, Trials: 2000, Faults: 2000}
}

// trials returns the effective beam-strike count: the configured value,
// defaulted to 2000 and capped at 250 in Quick mode.
func (c Config) trials() int {
	n := c.Trials
	if n <= 0 {
		n = 2000
	}
	if c.Quick && n > 250 {
		n = 250
	}
	return n
}

// faults returns the effective injection count, with the same defaults
// as trials.
func (c Config) faults() int {
	n := c.Faults
	if n <= 0 {
		n = 2000
	}
	if c.Quick && n > 250 {
		n = 250
	}
	return n
}

// seedFor derives a per-campaign seed so experiments are independent.
func (c Config) seedFor(id string, idx uint64) uint64 {
	h := c.Seed
	for _, b := range []byte(id) {
		h = h*1099511628211 + uint64(b)
	}
	return h*31 + idx
}

// checkpointFor returns the checkpoint for one campaign of a
// checkpoint-aware experiment, nil when checkpointing is disabled. The
// name parts must uniquely identify the campaign within the directory.
func (c Config) checkpointFor(parts ...string) *exec.Checkpoint {
	if c.CheckpointDir == "" {
		return nil
	}
	name := ""
	for i, p := range parts {
		if i > 0 {
			name += "-"
		}
		name += p
	}
	return &exec.Checkpoint{
		Path:  filepath.Join(c.CheckpointDir, name+".ckpt"),
		Limit: c.CheckpointLimit,
	}
}

// gridWorkers returns the effective cross-configuration parallelism.
func (c Config) gridWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return exec.MaxWorkers()
}

// runGrid runs an experiment's n independent configuration jobs on the
// shared scheduler and appends each job's rows to t in job order, so
// the rendered table is identical for every worker count (each job
// draws its campaign seed from seedFor, never from a shared stream).
func runGrid(cfg Config, t *report.Table, n int, job func(i int) ([][]string, error)) (*report.Table, error) {
	rows := make([][][]string, n)
	err := exec.ForEach(cfg.gridWorkers(), n, func(i int) error {
		r, err := job(i)
		if err != nil {
			return err
		}
		rows[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, rs := range rows {
		for _, r := range rs {
			t.AddRow(r...)
		}
	}
	return t, nil
}

// Definition is one runnable experiment.
type Definition struct {
	ID    string
	Title string
	Run   func(Config) (*report.Table, error)
}

// Experiments lists every reproduced table and figure, in paper order.
var Experiments = []Definition{
	{"table1", "Table 1: benchmark execution time on the Zynq-7000", Table1},
	{"fig2", "Figure 2: FPGA resource utilization", Fig2},
	{"fig3", "Figure 3: FIT of MxM and MNIST on the FPGA (critical vs tolerable)", Fig3},
	{"fig4", "Figure 4: FIT reduction vs TRE for MxM on the FPGA", Fig4},
	{"fig5", "Figure 5: FPGA mean executions between failures", Fig5},
	{"table2", "Table 2: benchmark execution time on the Xeon Phi", Table2},
	{"fig6", "Figure 6: SDC and DUE FIT on the Xeon Phi", Fig6},
	{"fig7", "Figure 7: PVF on the Xeon Phi", Fig7},
	{"fig8", "Figure 8: FIT reduction vs TRE on the Xeon Phi", Fig8},
	{"fig9", "Figure 9: Xeon Phi mean executions between failures", Fig9},
	{"table3", "Table 3: benchmark execution time on the Volta GPU", Table3},
	{"fig10a", "Figure 10a: GPU FIT, microbenchmarks", Fig10a},
	{"fig10b", "Figure 10b: GPU FIT, LavaMD and MxM", Fig10b},
	{"fig10c", "Figure 10c: GPU FIT, YOLOv3", Fig10c},
	{"fig11a", "Figure 11a: GPU FIT reduction vs TRE, microbenchmarks", Fig11a},
	{"fig11b", "Figure 11b: GPU FIT reduction vs TRE, LavaMD and MxM", Fig11b},
	{"fig11c", "Figure 11c: YOLOv3 SDC criticality", Fig11c},
	{"fig12", "Figure 12: AVF of the microbenchmarks on the GPU", Fig12},
	{"fig13", "Figure 13: GPU mean executions between failures", Fig13},
	{"ext-bf16", "Extension: binary16 vs bfloat16 reliability", ExtBF16},
	{"ext-mbu", "Extension: multi-bit upsets vs SECDED on the Xeon Phi", ExtMBU},
	{"ext-accum", "Extension: FPGA configuration-fault accumulation", ExtAccum},
	{"ext-mitigation", "Extension: TMR and ABFT protection of MxM", ExtMitigation},
	{"ext-solver", "Extension: iterative vs direct solver fault absorption", ExtSolver},
	{"ext-due", "Extension: behavioral DUE emulation and first-principles FIT-DUE", ExtDUE},
}

// Get returns the experiment with the given id.
func Get(id string) (Definition, bool) {
	for _, d := range Experiments {
		if d.ID == id {
			return d, true
		}
	}
	return Definition{}, false
}

// RunAll executes every experiment — concurrently on the shared
// scheduler, since each campaign seeds independently — and renders the
// tables to w in paper order.
func RunAll(cfg Config, w io.Writer) error {
	tables := make([]*report.Table, len(Experiments))
	err := exec.ForEach(cfg.gridWorkers(), len(Experiments), func(i int) error {
		t, err := Experiments[i].Run(cfg)
		if err != nil {
			return fmt.Errorf("core: %s: %w", Experiments[i].ID, err)
		}
		tables[i] = t
		return nil
	})
	if err != nil {
		return err
	}
	for _, t := range tables {
		if err := t.WriteASCII(w); err != nil {
			return err
		}
	}
	return nil
}

// ---- shared workload construction -----------------------------------

// Executable kernel sizes: small enough that one faulty execution takes
// well under a millisecond (GEMM/LUD/micro) or a few milliseconds
// (CNNs), large enough that fault sites are plentiful. Paper-scale op
// and data counts enter through the Workload scale factors.
const (
	gemmExecN    = 16
	ludExecN     = 16
	lavaExecDim  = 2
	lavaExecPerB = 4
	microThreads = 4
	microOps     = 50
)

// Kernel construction seeds (inputs are part of the experiment identity
// and stay fixed; Config.Seed varies only campaign sampling).
const (
	seedGEMM  = 1001
	seedLava  = 1002
	seedLUD   = 1003
	seedMicro = 1004
	seedMNIST = 1005
	seedYOLO  = 1006
)

var (
	mnistOnce sync.Once
	mnistK    *kernels.MNIST
	yoloOnce  sync.Once
	yoloK     *kernels.YOLO
)

// mnistKernel returns the shared trained MNIST instance (training is
// deterministic but takes a visible fraction of a second).
func mnistKernel() *kernels.MNIST {
	mnistOnce.Do(func() { mnistK = kernels.NewMNIST(1, seedMNIST) })
	return mnistK
}

// yoloKernel returns the shared YOLO-lite instance.
func yoloKernel() *kernels.YOLO {
	yoloOnce.Do(func() { yoloK = kernels.NewYOLO(seedYOLO) })
	return yoloK
}

func gemmKernel() *kernels.GEMM   { return kernels.NewGEMM(gemmExecN, seedGEMM) }
func ludKernel() *kernels.LUD     { return kernels.NewLUD(ludExecN, seedLUD) }
func lavaKernel() *kernels.LavaMD { return kernels.NewLavaMD(lavaExecDim, lavaExecPerB, seedLava) }
func microKernel(op kernels.MicroOp) *kernels.Micro {
	return kernels.NewMicro(op, microThreads, microOps, seedMicro)
}

// opScaleTo returns the OpScale that brings kernel k to targetOps total
// dynamic operations (op counts are precision-independent for all the
// paper's kernels). The profile comes from the process cache, so the
// repeated workload-map construction inside grid loops costs one kernel
// execution per kernel for the whole process.
func opScaleTo(k kernels.Kernel, targetOps float64) float64 {
	total := exec.Artifact(k, fp.Double, "", nil).Counts.Total()
	return targetOps / float64(total)
}

// Paper-scale targets. FPGA MxM is the paper's 128x128; Xeon Phi and GPU
// target op counts are set so the timing models land on the execution
// times of Tables 2 and 3 (the absolute times are calibration inputs;
// every FIT/MEBF/criticality result is computed, not calibrated).
const (
	fpgaMxMOpScale   = 512 // 16^3 -> 128^3
	fpgaMxMDataScale = 64  // 16^2 -> 128^2

	phiLavaOps = 8.631e10
	phiLUDOps  = 1.585e11
	phiMxMOps  = 8.755e9

	gpuMicroOps = 1e9 * 20480 // 1e9 ops per thread on 20480 threads
	gpuLavaOps  = 7.109e10
	gpuMxMOps   = 1.600e11
	gpuYOLOOps  = 3.217e10
)

// mapOrDie maps a workload and validates the result.
func mapOn(d arch.Device, w arch.Workload, f fp.Format) (*arch.Mapping, error) {
	m, err := d.Map(w, f)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// fmtSec renders a modeled duration the way the paper's tables do.
func fmtSec(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }

// fmtAU renders a FIT value in normalized arbitrary units.
func fmtAU(v float64) string { return fmt.Sprintf("%.3f", v) }

// fmtPct renders a fraction as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// fmtTRE renders a tolerance threshold without rounding tiny values away.
func fmtTRE(v float64) string { return fmt.Sprintf("%g%%", 100*v) }
