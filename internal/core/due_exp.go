package core

import (
	"fmt"

	"mixedrel/internal/beam"
	"mixedrel/internal/inject"
	"mixedrel/internal/report"
	"mixedrel/internal/xeonphi"
)

// ExtDUE derives the DUE side of the paper's tables from first
// principles instead of the calibrated constant: control-state faults
// (loop/index/pointer corruption) are injected into the Xeon Phi
// benchmarks, the watchdog and FP trap classify crashes and hangs
// behaviorally, and the beam model's FIT-DUE is recomputed from the
// observed rates next to the legacy constant-DUEFraction value.
//
// The experiment is checkpoint-aware: with Config.CheckpointDir set,
// every campaign journals its classified samples and an interrupted
// grid resumes to byte-identical tables.
func ExtDUE(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:    "ext-due",
		Title: "Extension: behavioral DUE emulation (control faults, watchdog, FP trap)",
		Columns: []string{"Benchmark", "Format", "faults", "P(SDC)", "P(crash)",
			"P(hang)", "P(DUE)", "aborted", "FIT-DUE behav", "FIT-DUE const"},
		Notes: []string{
			"P(*) from control-state injection (loop/index/pointer corruption with",
			"op-budget watchdog and NaN/Inf trap); FIT-DUE behav runs the beam model",
			"with those behavioral control strikes, FIT-DUE const uses the paper's",
			"calibrated DUEFraction. shape: crash-dominated DUEs, hang tail from",
			"loop-counter runaways; behavioral FIT-DUE tracks the constant model's",
			"order of magnitude without being asserted",
		},
	}
	return runGrid(cfg, t, len(phiOrder)*len(phiFormats), func(i int) ([][]string, error) {
		name, fi := phiOrder[i/len(phiFormats)], i%len(phiFormats)
		f := phiFormats[fi]
		m, err := mapOn(xeonphi.New(), phiWorkloads()[name], f)
		if err != nil {
			return nil, err
		}

		// P(SDC)/P(DUE) split from a pure control-site campaign.
		c := inject.Campaign{
			Kernel:        m.Kernel,
			Format:        f,
			Faults:        cfg.faults(),
			Seed:          cfg.seedFor("ext-due-pvf-"+name, uint64(fi)),
			Sites:         []inject.Site{inject.SiteControl},
			Wrap:          m.Wrap,
			WrapKey:       m.WrapKey,
			TrapNonFinite: true,
			Workers:       cfg.SampleWorkers,
			Checkpoint:    cfg.checkpointFor("ext-due-pvf", name, f.String()),
		}
		res, err := c.Run()
		if err != nil {
			return nil, err
		}

		// Beam FIT-DUE, behavioral vs the calibrated constant.
		behav, err := beam.Experiment{
			Mapping:       m,
			Trials:        cfg.trials(),
			Seed:          cfg.seedFor("ext-due-beam-"+name, uint64(fi)),
			Workers:       cfg.SampleWorkers,
			BehavioralDUE: true,
			TrapNonFinite: true,
			Checkpoint:    cfg.checkpointFor("ext-due-beam", name, f.String()),
		}.Run()
		if err != nil {
			return nil, err
		}
		konst, err := beam.Experiment{
			Mapping:    m,
			Trials:     cfg.trials(),
			Seed:       cfg.seedFor("ext-due-beam-"+name, uint64(fi)),
			Workers:    cfg.SampleWorkers,
			Checkpoint: cfg.checkpointFor("ext-due-const", name, f.String()),
		}.Run()
		if err != nil {
			return nil, err
		}

		n := float64(res.Classified())
		return [][]string{{
			name, f.String(),
			fmt.Sprintf("%d", res.Faults),
			fmt.Sprintf("%.3f", res.PVF),
			fmt.Sprintf("%.3f", float64(res.CrashDUEs)/n),
			fmt.Sprintf("%.3f", float64(res.HangDUEs)/n),
			fmt.Sprintf("%.3f", res.PDUE),
			fmt.Sprintf("%d", len(res.Aborted)),
			fmtAU(behav.FITDUE),
			fmtAU(konst.FITDUE),
		}}, nil
	})
}
