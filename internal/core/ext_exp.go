package core

import (
	"fmt"
	"math"

	"mixedrel/internal/beam"
	"mixedrel/internal/fp"
	"mixedrel/internal/fpga"
	"mixedrel/internal/gpu"
	"mixedrel/internal/inject"
	"mixedrel/internal/kernels"
	"mixedrel/internal/metrics"
	"mixedrel/internal/mitigate"
	"mixedrel/internal/report"
	"mixedrel/internal/xeonphi"
)

// This file holds the extension experiments — studies beyond the paper's
// figures that its discussion motivates: the bfloat16 design point
// ("other architectures support different precisions", Section 2.2),
// multi-bit upsets defeating SECDED (the paper's MBU citation [8]), and
// FPGA configuration-fault accumulation (Section 4: "DUEs could be
// observed in FPGAs if faults are let to accumulate").

// ExtBF16 contrasts binary16 and bfloat16 — identical storage cost,
// different mantissa/exponent split — on the GPU model: error rate,
// tolerance to small deviations, and the share of corruptions that
// saturate to non-finite values.
func ExtBF16(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "ext-bf16",
		Title:   "Extension: binary16 vs bfloat16 reliability on the GPU",
		Columns: []string{"Benchmark", "Format", "FIT-SDC", "reduction@1%", "nonfinite-SDCs"},
		Notes: []string{
			"bfloat16 trades 3 mantissa bits for binary32's exponent range: its flips",
			"are ~8x coarser, so markedly less of its FIT is recovered by an output",
			"tolerance; non-finite corruption shares stay comparable here because they",
			"are dominated by corrupted exp() arguments, which overflow either format",
		},
	}
	d := gpu.New()
	names := []string{"MxM", "LavaMD"}
	formats := []fp.Format{fp.Half, fp.BFloat16}
	return runGrid(cfg, t, len(names)*len(formats), func(i int) ([][]string, error) {
		ni, fi := i/len(formats), i%len(formats)
		name, f := names[ni], formats[fi]
		m, err := mapOn(d, gpuWorkloads()[name], f)
		if err != nil {
			return nil, err
		}
		res, err := beam.Experiment{
			Mapping:     m,
			Trials:      cfg.trials(),
			Seed:        cfg.seedFor("ext-bf16-"+name, uint64(ni*10+fi)),
			KeepOutputs: true,
			Workers:     cfg.SampleWorkers,
		}.Run()
		if err != nil {
			return nil, err
		}
		// Count SDCs whose output saturated to Inf/NaN — the
		// overflow failure mode binary16's narrow exponent invites.
		nonFinite := 0
		for _, out := range res.Outputs {
			for _, v := range out {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					nonFinite++
					break
				}
			}
		}
		curve := metrics.TRECurve(res.FITSDC, res.RelErrs, []float64{0.01})
		nfShare := 0.0
		if res.SDC > 0 {
			nfShare = float64(nonFinite) / float64(res.SDC)
		}
		return [][]string{{name, f.String(), fmtAU(res.FITSDC),
			fmtPct(curve[0].Reduction), fmtPct(nfShare)}}, nil
	})
}

// ExtMBU repeats the Xeon Phi LavaMD campaign with multi-bit upsets
// enabled: SECDED stops correcting, so the ECC-protected register file
// starts contributing machine checks (DUEs).
func ExtMBU(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "ext-mbu",
		Title:   "Extension: multi-bit upsets vs SECDED on the Xeon Phi",
		Columns: []string{"Benchmark", "Format", "MBU", "FIT-SDC", "FIT-DUE"},
		Notes: []string{
			"with 10% double-bit and 3% triple-bit upsets, the MCA-protected register",
			"file turns from silent (corrected) into a DUE source — total DUE rises",
			"sharply while SDC stays almost unchanged",
		},
	}
	names := []string{"LavaMD", "MxM"}
	return runGrid(cfg, t, len(names)*len(phiFormats), func(i int) ([][]string, error) {
		ni, fi := i/len(phiFormats), i%len(phiFormats)
		name, f := names[ni], phiFormats[fi]
		m, err := mapOn(xeonphi.New(), phiWorkloads()[name], f)
		if err != nil {
			return nil, err
		}
		var rows [][]string
		for mi, mbu := range []beam.MBU{{}, {P2: 0.10, P3: 0.03}} {
			res, err := beam.Experiment{
				Mapping: m,
				Trials:  cfg.trials(),
				Seed:    cfg.seedFor("ext-mbu-"+name, uint64(ni*100+fi*10+mi)),
				MBU:     mbu,
				Workers: cfg.SampleWorkers,
			}.Run()
			if err != nil {
				return nil, err
			}
			label := "off"
			if mbu.Enabled() {
				label = "on"
			}
			rows = append(rows, []string{name, f.String(), label, fmtAU(res.FITSDC), fmtAU(res.FITDUE)})
		}
		return rows, nil
	})
}

// ExtAccum simulates FPGA configuration-fault accumulation without
// scrubbing: the probability of output corruption and of a functionally
// dead circuit as upsets pile up.
func ExtAccum(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "ext-accum",
		Title:   "Extension: FPGA configuration-fault accumulation (MxM, no scrubbing)",
		Columns: []string{"Format", "faults", "P(SDC)", "P(dead)"},
		Notes: []string{
			"the paper reprograms after every error precisely because accumulated",
			"upsets quickly corrupt every execution and eventually kill the circuit",
		},
	}
	rounds := cfg.trials() / 10
	if rounds < 10 {
		rounds = 10
	}
	formats := []fp.Format{fp.Double, fp.Half}
	return runGrid(cfg, t, len(formats), func(fi int) ([][]string, error) {
		f := formats[fi]
		m, err := mapOn(fpga.New(), fpgaWorkloads()["MxM"], f)
		if err != nil {
			return nil, err
		}
		res, err := beam.Accumulation{
			Mapping:   m,
			MaxFaults: 8,
			Rounds:    rounds,
			Seed:      cfg.seedFor("ext-accum", uint64(fi)),
		}.Run()
		if err != nil {
			return nil, err
		}
		var rows [][]string
		for _, p := range res.Points {
			rows = append(rows, []string{f.String(), fmt.Sprintf("%d", p.Faults),
				fmt.Sprintf("%.3f", p.PSDC), fmt.Sprintf("%.3f", p.PDead)})
		}
		return rows, nil
	})
}

// ExtMitigation evaluates TMR and ABFT protection of GEMM: residual
// silent-corruption probability, correction/detection split, and
// compute overhead — the cost-benefit table any deployment weighs after
// reading the paper's FIT numbers.
func ExtMitigation(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "ext-mitigation",
		Title:   "Extension: TMR and ABFT protection of MxM",
		Columns: []string{"Scheme", "Format", "residual-PVF", "corrected", "detected", "overhead-ops"},
		Notes: []string{
			"TMR outvotes any single-replica fault at 3x compute; ABFT locates and",
			"repairs single-element corruptions for a few percent overhead but is",
			"blind to input (memory) faults, which neither scheme can repair",
		},
	}
	g := gemmKernel()
	formats := []fp.Format{fp.Double, fp.Half}
	schemes := []struct {
		name string
		k    kernels.Kernel
	}{
		{"none", g},
		{"TMR", mitigate.NewTMR(g)},
		{"ABFT", mitigate.NewABFTGEMM(g)},
	}
	return runGrid(cfg, t, len(formats)*len(schemes), func(i int) ([][]string, error) {
		fi, si := i/len(schemes), i%len(schemes)
		f, s := formats[fi], schemes[si]
		rep, err := mitigate.Evaluate(s.k, g, f, cfg.faults(),
			cfg.seedFor("ext-mitigation", uint64(fi*10+si)))
		if err != nil {
			return nil, err
		}
		return [][]string{{s.name, f.String(), fmt.Sprintf("%.3f", rep.ResidualPVF),
			fmt.Sprintf("%d", rep.Corrected), fmt.Sprintf("%d", rep.Detected),
			fmt.Sprintf("%.2fx", rep.OverheadOps)}}, nil
	})
}

// ExtSolver contrasts algorithmic fault absorption: conjugate gradient
// re-converges after a perturbation, so most of its corruptions end up
// within tiny output tolerances, while a direct solver (LUD) carries
// every surviving fault straight into the factorization.
func ExtSolver(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "ext-solver",
		Title:   "Extension: iterative (CG) vs direct (LUD) solver fault absorption",
		Columns: []string{"Solver", "Format", "PVF", "reduction@0.01%", "reduction@1%"},
		Notes: []string{
			"CG's remaining iterations steer the iterate back after a perturbation, so",
			"an output tolerance recovers far more of its FIT than the direct solver's,",
			"where a surviving fault lands in the factorization verbatim",
		},
	}
	solvers := []struct {
		name string
		k    kernels.Kernel
	}{
		{"CG", kernels.NewCG(16, 16, seedGEMM)},
		{"LUD", ludKernel()},
	}
	formats := []fp.Format{fp.Double, fp.Single}
	return runGrid(cfg, t, len(solvers)*len(formats), func(i int) ([][]string, error) {
		si, fi := i/len(formats), i%len(formats)
		s, f := solvers[si], formats[fi]
		c := inject.Campaign{
			Kernel:  s.k,
			Format:  f,
			Faults:  cfg.faults(),
			Seed:    cfg.seedFor("ext-solver", uint64(si*10+fi)),
			Sites:   []inject.Site{inject.SiteOperation},
			Workers: cfg.SampleWorkers,
		}
		res, err := c.Run()
		if err != nil {
			return nil, err
		}
		curve := metrics.TRECurve(1, res.RelErrs, []float64{0.0001, 0.01})
		return [][]string{{s.name, f.String(), fmt.Sprintf("%.3f", res.PVF),
			fmtPct(curve[0].Reduction), fmtPct(curve[1].Reduction)}}, nil
	})
}
