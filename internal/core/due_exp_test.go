package core

import (
	"bytes"
	"errors"
	"testing"

	"mixedrel/internal/exec"
	"mixedrel/internal/report"
)

func TestExtDUEShape(t *testing.T) {
	tbl := runExp(t, "ext-due")
	if len(tbl.Rows) != len(phiOrder)*len(phiFormats) {
		t.Fatalf("ext-due has %d rows, want %d", len(tbl.Rows), len(phiOrder)*len(phiFormats))
	}
	for _, name := range phiOrder {
		for _, f := range phiFormats {
			match := []string{name, f.String()}
			pdue := val(t, "ext-due", "P(DUE)", match...)
			if pdue <= 0 || pdue > 1 {
				t.Errorf("%s/%v P(DUE) %v out of (0,1]", name, f, pdue)
			}
			pc := val(t, "ext-due", "P(crash)", match...)
			ph := val(t, "ext-due", "P(hang)", match...)
			if d := pc + ph - pdue; d > 1e-3 || d < -1e-3 {
				t.Errorf("%s/%v P(crash) %v + P(hang) %v != P(DUE) %v", name, f, pc, ph, pdue)
			}
			if ab := val(t, "ext-due", "aborted", match...); ab != 0 {
				t.Errorf("%s/%v has %v aborted samples", name, f, ab)
			}
			if fit := val(t, "ext-due", "FIT-DUE behav", match...); fit <= 0 {
				t.Errorf("%s/%v behavioral FIT-DUE %v, want > 0", name, f, fit)
			}
		}
	}
}

// TestExtDUECheckpointResume: the whole experiment grid, interrupted by
// a per-invocation sample budget and resumed until complete, must
// render a table byte-identical to an uninterrupted checkpointed run.
func TestExtDUECheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("grid resume is a multi-campaign test")
	}
	base := Config{Seed: 3, Trials: 30, Faults: 30}

	interrupted := base
	interrupted.CheckpointDir = t.TempDir()
	interrupted.CheckpointLimit = 12
	var resumed *report.Table
	for i := 0; ; i++ {
		tbl, err := ExtDUE(interrupted)
		if err == nil {
			resumed = tbl
			break
		}
		if !errors.Is(err, exec.ErrPartial) {
			t.Fatal(err)
		}
		if i > 60 {
			t.Fatal("grid never completed")
		}
	}

	fresh := base
	fresh.CheckpointDir = t.TempDir()
	oneShot, err := ExtDUE(fresh)
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := resumed.WriteASCII(&a); err != nil {
		t.Fatal(err)
	}
	if err := oneShot.WriteASCII(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("resumed table differs from uninterrupted run:\n%s\nvs\n%s", a.String(), b.String())
	}
}
