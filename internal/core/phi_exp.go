package core

import (
	"fmt"

	"mixedrel/internal/arch"
	"mixedrel/internal/beam"
	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/inject"
	"mixedrel/internal/metrics"
	"mixedrel/internal/report"
	"mixedrel/internal/xeonphi"
)

// phiWorkloads returns the three Xeon Phi benchmarks at paper scale.
func phiWorkloads() map[string]arch.Workload {
	lava := lavaKernel()
	gemm := gemmKernel()
	lud := ludKernel()
	return map[string]arch.Workload{
		"LavaMD": arch.NewWorkload(lava, opScaleTo(lava, phiLavaOps), 1),
		"MxM":    arch.NewWorkload(gemm, opScaleTo(gemm, phiMxMOps), 1),
		"LUD":    arch.NewWorkload(lud, opScaleTo(lud, phiLUDOps), 1),
	}
}

var phiOrder = []string{"LavaMD", "MxM", "LUD"}
var phiFormats = []fp.Format{fp.Double, fp.Single}

// Table2 reproduces the Xeon Phi execution-time table.
func Table2(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "table2",
		Title:   "Benchmark execution time on the Xeon Phi",
		Columns: []string{"Benchmark", "Double", "Single"},
		Notes: []string{
			"paper: LavaMD 1.307/0.801 s, MxM 10.612/12.028 s, LUD 1.264/0.818 s",
			"shape: single faster for the compute-bound codes, slower for MxM",
			"(prefetcher covers fewer elements per request in single)",
		},
	}
	d := xeonphi.New()
	for _, name := range phiOrder {
		row := []string{name}
		for _, f := range phiFormats {
			m, err := mapOn(d, phiWorkloads()[name], f)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtSec(m.Time))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// phiBeam runs the beam campaign for one Phi benchmark and format.
func phiBeam(cfg Config, name string, f fp.Format, idx uint64) (*arch.Mapping, *beam.Result, error) {
	m, err := mapOn(xeonphi.New(), phiWorkloads()[name], f)
	if err != nil {
		return nil, nil, err
	}
	res, err := beam.Experiment{
		Mapping: m,
		Trials:  cfg.trials(),
		Seed:    cfg.seedFor("phi-"+name, idx),
		Workers: cfg.SampleWorkers,
	}.Run()
	return m, res, err
}

// Fig6 reproduces the Xeon Phi SDC/DUE FIT figure.
func Fig6(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "fig6",
		Title:   "SDC and DUE FIT on the Xeon Phi (a.u.)",
		Columns: []string{"Benchmark", "Format", "FIT-SDC", "FIT-DUE"},
		Notes: []string{
			"paper: single SDC FIT above double for LavaMD and MxM (more registers",
			"instantiated), similar for LUD; single DUE FIT above double everywhere",
			"(16 SP lanes carry twice the control bits of 8 DP lanes)",
		},
	}
	return runGrid(cfg, t, len(phiOrder)*len(phiFormats), func(i int) ([][]string, error) {
		name, fi := phiOrder[i/len(phiFormats)], i%len(phiFormats)
		f := phiFormats[fi]
		_, res, err := phiBeam(cfg, name, f, uint64(fi))
		if err != nil {
			return nil, err
		}
		return [][]string{{name, f.String(), fmtAU(res.FITSDC), fmtAU(res.FITDUE)}}, nil
	})
}

// Fig7 reproduces the Xeon Phi PVF figure via CAROL-FI-style injection
// into random variables (operand and memory sites).
func Fig7(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "fig7",
		Title:   "SDC PVF on the Xeon Phi (CAROL-FI single-bit flips)",
		Columns: []string{"Benchmark", "Format", "faults", "SDCs", "PVF"},
		Notes: []string{
			"paper: PVF is similar for single and double on every code — data",
			"precision does not change the propagation probability on shared hardware;",
			"the beam FIT difference comes from resource usage, not propagation",
		},
	}
	return runGrid(cfg, t, len(phiOrder)*len(phiFormats), func(i int) ([][]string, error) {
		name, fi := phiOrder[i/len(phiFormats)], i%len(phiFormats)
		f := phiFormats[fi]
		// Use the device mapping's environment (software exp and
		// all) so the injector sees the same dataflow the beam does.
		m, err := mapOn(xeonphi.New(), phiWorkloads()[name], f)
		if err != nil {
			return nil, err
		}
		c := inject.Campaign{
			Kernel:  m.Kernel,
			Format:  f,
			Faults:  cfg.faults(),
			Seed:    cfg.seedFor("phi-pvf-"+name, uint64(fi)),
			Sites:   []inject.Site{inject.SiteOperand, inject.SiteMemory},
			Wrap:    m.Wrap,
			WrapKey: m.WrapKey,
			Workers: cfg.SampleWorkers,
		}
		res, err := c.Run()
		if err != nil {
			return nil, err
		}
		return [][]string{{name, f.String(), fmt.Sprintf("%d", res.Faults),
			fmt.Sprintf("%d", res.SDCs), fmt.Sprintf("%.3f", res.PVF)}}, nil
	})
}

// Fig8 reproduces the Xeon Phi TRE sweep.
func Fig8(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "fig8",
		Title:   "FIT reduction vs tolerated relative error on the Xeon Phi",
		Columns: []string{"Benchmark", "Format", "TRE", "FIT (a.u.)", "reduction"},
		Notes: []string{
			"paper: double reduces faster for LUD and (slightly) MxM; for LavaMD the",
			"single version reduces faster — the double transcendental exp runs more",
			"steps, so faults strike mid-computation state with larger downstream effect",
		},
	}
	return runGrid(cfg, t, len(phiOrder)*len(phiFormats), func(i int) ([][]string, error) {
		name, fi := phiOrder[i/len(phiFormats)], i%len(phiFormats)
		f := phiFormats[fi]
		_, res, err := phiBeam(cfg, name, f, uint64(100+fi))
		if err != nil {
			return nil, err
		}
		var rows [][]string
		for _, p := range metrics.TRECurve(res.FITSDC, res.RelErrs, nil) {
			rows = append(rows, []string{name, f.String(), fmtTRE(p.TRE), fmtAU(p.FIT), fmtPct(p.Reduction)})
		}
		return rows, nil
	})
}

// Fig9 reproduces the Xeon Phi MEBF figure.
func Fig9(cfg Config) (*report.Table, error) {
	t := &report.Table{
		ID:      "fig9",
		Title:   "Xeon Phi mean executions between failures (a.u.)",
		Columns: []string{"Benchmark", "Format", "MEBF", "vs double"},
		Notes: []string{
			"paper: single wins for LavaMD and LUD (performance gain exceeds the FIT",
			"increase); double wins for MxM (single is slower AND more exposed)",
		},
	}
	mebfs := make([]float64, len(phiOrder)*len(phiFormats))
	err := exec.ForEach(cfg.gridWorkers(), len(mebfs), func(i int) error {
		name, fi := phiOrder[i/len(phiFormats)], i%len(phiFormats)
		m, res, err := phiBeam(cfg, name, phiFormats[fi], uint64(200+fi))
		if err != nil {
			return err
		}
		mebfs[i] = metrics.MEBF(res.FITSDC, m.Time)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ni, name := range phiOrder {
		base := ni * len(phiFormats)
		for fi, f := range phiFormats {
			t.AddRow(name, f.String(), fmt.Sprintf("%.3g", mebfs[base+fi]),
				metrics.Ratio(mebfs[base+fi], mebfs[base])) // vs double
		}
	}
	return t, nil
}
