// Package xeonphi models the Intel Xeon Phi 3120A coprocessor (Knights
// Corner) the paper irradiates: 57 in-order cores, each with a 512-bit
// Vector Processing Unit processing 16 single-precision or 8
// double-precision lanes per operation, no half-precision hardware, and
// a Machine Check Architecture whose SECDED ECC protects the register
// file and cache SRAM.
//
// Because double and single execute on the *same* hardware, the KNC's
// precision-dependent FIT is a compiler effect, not an area effect: the
// paper's icc optimization-report analysis (Section 5) shows the single
// versions of LavaMD and MxM instantiate 33% and 47% more vector
// registers (deeper unrolling/software pipelining at 16 lanes), while
// LUD allocates equally. More instantiated registers mean more occupied
// — and unprotected — functional-unit buffers and internal queues, which
// is what raises the single-precision SDC FIT. DUEs rise with lane
// count: 16 SP lanes carry twice the control bits of 8 DP lanes.
//
// The compiler report (registers per precision) and the published
// execution times' efficiency factors are empirical calibration inputs,
// exactly as core counts are; everything downstream (FIT, PVF, MEBF,
// criticality) is computed mechanistically from them.
package xeonphi

import (
	"fmt"
	"time"

	"mixedrel/internal/arch"
	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
)

// Machine constants for the 3120A.
const (
	cores           = 57
	vectorBits      = 512
	vregsPerCore    = 32
	clockHz         = 1.1e9
	opsPerCycle     = 0.25 // in-order core issuing a vector FP op every 4th cycle
	lanesSingle     = 16
	lanesDouble     = 8
	ctrlBitsPerLane = 40  // per-lane sequencing/mask state
	fuLogicFactor   = 6.0 // sensitive logic bits per datapath bit
	queueOccupancy  = 0.5 // average fraction of allocated buffer live
	sigmaSRAM       = 1.0
	sigmaLogic      = 0.25
	sigmaCtrl       = 0.4
	ctrlDUEFrac     = 0.45
	effBandwidth    = 6.6e9 // bytes/s effective for cache-unfriendly streams
)

// profile is the per-kernel calibration: the icc-report register counts,
// the single-precision vector efficiency (imperfect 16-lane filling),
// memory-boundedness, and the single-precision prefetch efficiency for
// memory-bound codes (the paper reports the prefetcher covers fewer
// elements per request in single precision).
type profile struct {
	regsDouble     int
	regBoostSingle float64 // registers_single / registers_double
	vecEffSingle   float64 // achieved / ideal speedup at 16 lanes
	memBound       bool
	prefetchEffS   float64 // single-precision effective-bandwidth factor
	branchiness    float64 // control-flow intensity scaling DUE exposure
}

// expShapes describes the KNC transcendental implementations: the
// double-precision exp runs a much longer sequence (deeper argument
// reduction, longer polynomial — cf. the paper's [43]) than the
// vectorized single-precision one. The asymmetry is what the paper
// blames for LavaMD's criticality inversion (Section 5.3).
var expShapes = map[fp.Format]fp.ExpShape{
	// The scalar table-driven double path carries two table indices plus
	// shift state; the vectorized single path is branch-free polynomial
	// SIMD code with a single reduction quotient.
	fp.Double: {Terms: 13, Squarings: 3, IntSites: 2},
	fp.Single: {Terms: 7, Squarings: 1, IntSites: 1},
}

// intStateWeight is the weight of one integer sequencing site in the
// same (per-operation-count) units as the FU op weights: the double
// transcendental's index/shift sequencer is a substantial scalar unit,
// the single path's is a trivial quotient latch.
var intStateWeight = map[fp.Format]float64{
	fp.Double: 8,
	fp.Single: 1,
}

// ExpShapeFor returns the KNC software-exp shape for format f.
func ExpShapeFor(f fp.Format) fp.ExpShape { return expShapes[f] }

var profiles = map[string]profile{
	"LavaMD":  {regsDouble: 12, regBoostSingle: 1.33, vecEffSingle: 0.6253, branchiness: 1.0},
	"MxM":     {regsDouble: 15, regBoostSingle: 1.47, vecEffSingle: 0.90, memBound: true, prefetchEffS: 0.44, branchiness: 0.8},
	"LUD":     {regsDouble: 10, regBoostSingle: 1.00, vecEffSingle: 0.775, branchiness: 1.2},
	"Hotspot": {regsDouble: 11, regBoostSingle: 1.20, vecEffSingle: 0.80, branchiness: 1.1},
	"CG":      {regsDouble: 14, regBoostSingle: 1.25, vecEffSingle: 0.78, branchiness: 1.3},
}

// defaultProfile covers kernels outside the paper's Phi set.
var defaultProfile = profile{regsDouble: 12, regBoostSingle: 1.25, vecEffSingle: 0.85, branchiness: 1.0}

// Device is the Xeon Phi 3120A model.
type Device struct{}

// New returns the KNC device model.
func New() *Device { return &Device{} }

// Name implements arch.Device.
func (d *Device) Name() string { return "XeonPhi-3120A" }

// Supports implements arch.Device: KNC has no half-precision hardware.
func (d *Device) Supports(f fp.Format) bool { return f == fp.Single || f == fp.Double }

// lanes returns the VPU lane count for a format.
func lanes(f fp.Format) float64 {
	if f == fp.Single {
		return lanesSingle
	}
	return lanesDouble
}

// Map implements arch.Device.
func (d *Device) Map(w arch.Workload, f fp.Format) (*arch.Mapping, error) {
	if !d.Supports(f) {
		return nil, fmt.Errorf("%w: %s does not implement %v", arch.ErrUnsupported, d.Name(), f)
	}
	if w.Kernel == nil {
		return nil, fmt.Errorf("xeonphi: workload has no kernel")
	}
	// DataScale is irrelevant here: KNC cache and register SRAM are ECC
	// protected, so data residency does not contribute unprotected
	// exposure.
	opScale := w.OpScale
	if opScale <= 0 {
		opScale = 1
	}
	baseCounts := exec.Artifact(w.Kernel, f, "", nil).Counts
	if baseCounts.Total() == 0 {
		return nil, fmt.Errorf("xeonphi: kernel %s executes no operations", w.Kernel.Name())
	}
	// Kernels that call exp run it through the KNC transcendental
	// sequence; its steps become individually exposed operations.
	var wrap func(fp.Env) fp.Env
	var wrapKey string
	counts := baseCounts
	if baseCounts.ByOp[fp.OpExp] > 0 {
		shape := expShapes[f]
		wrap = fp.WrapExp(shape)
		wrapKey = shape.Key()
		counts = exec.Artifact(w.Kernel, f, wrapKey, wrap).Counts
	}
	total := counts.Total()
	prof, ok := profiles[w.Kernel.Name()]
	if !ok {
		prof = defaultProfile
	}

	// Compiler model: vector registers instantiated per core.
	regs := float64(prof.regsDouble)
	if f == fp.Single {
		regs *= prof.regBoostSingle
	}
	if regs > vregsPerCore {
		regs = vregsPerCore
	}

	// Execution time.
	var execSeconds float64
	paperOps := float64(total) * opScale
	if prof.memBound {
		// Cache-unfriendly codes stream one operand per operation; the
		// single-precision prefetcher covers fewer elements per request
		// (paper Section 5.4), shrinking its effective bandwidth.
		traffic := paperOps * float64(f.Bytes())
		bw := effBandwidth
		if f == fp.Single {
			bw = effBandwidth * prof.prefetchEffS
		}
		execSeconds = traffic / bw
	} else {
		eff := 1.0
		if f == fp.Single {
			eff = prof.vecEffSingle
		}
		execSeconds = paperOps / (cores * lanes(f) * opsPerCycle * clockHz * eff)
	}

	// Exposure accounting.
	fuBits := float64(cores) * vectorBits * fuLogicFactor
	queueBits := float64(cores) * regs * vectorBits * queueOccupancy
	regFileBits := float64(cores) * vregsPerCore * vectorBits
	ctrlBits := float64(cores) * lanes(f) * ctrlBitsPerLane * prof.branchiness

	var opWeights [fp.NumOps]float64
	for op := fp.Op(0); int(op) < fp.NumOps; op++ {
		opWeights[op] = float64(counts.ByOp[op])
	}

	m := &arch.Mapping{
		DeviceName: d.Name(),
		Kernel:     w.Kernel,
		Format:     f,
		Counts:     counts,
		Wrap:       wrap,
		WrapKey:    wrapKey,
		Time:       time.Duration(execSeconds * float64(time.Second)),
		Exposures: []arch.Exposure{
			{
				Class:          arch.FunctionalUnit,
				Bits:           fuBits + queueBits,
				CrossSection:   sigmaLogic,
				OpWeights:      opWeights,
				IntStateWeight: intStateWeight[f],
			},
			{
				Class:        arch.RegisterFile,
				Bits:         regFileBits,
				CrossSection: sigmaSRAM,
				Protected:    true, // MCA SECDED ECC
			},
			{
				Class:        arch.ControlLogic,
				Bits:         ctrlBits,
				CrossSection: sigmaCtrl,
				DUEFraction:  ctrlDUEFrac,
			},
		},
		Resources: map[string]float64{
			"vregs":     regs,
			"lanes":     lanes(f),
			"queueBits": queueBits,
			"fuBits":    fuBits,
		},
	}
	return m, nil
}
