package xeonphi

import (
	"errors"
	"testing"

	"mixedrel/internal/arch"
	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

func mapKernel(t *testing.T, k kernels.Kernel, f fp.Format, opScale float64) *arch.Mapping {
	t.Helper()
	m, err := New().Map(arch.NewWorkload(k, opScale, 1), f)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSupports(t *testing.T) {
	d := New()
	if d.Supports(fp.Half) {
		t.Error("KNC has no half-precision hardware")
	}
	if !d.Supports(fp.Single) || !d.Supports(fp.Double) {
		t.Error("KNC must support single and double")
	}
}

func TestMapRejectsHalf(t *testing.T) {
	_, err := New().Map(arch.NewWorkload(kernels.NewGEMM(8, 1), 1, 1), fp.Half)
	if !errors.Is(err, arch.ErrUnsupported) {
		t.Errorf("expected ErrUnsupported, got %v", err)
	}
}

// Section 5: the compiler instantiates 47% more registers for single
// MxM, 33% more for single LavaMD, and the same count for LUD.
func TestCompilerRegisterModel(t *testing.T) {
	cases := []struct {
		k     kernels.Kernel
		boost float64
	}{
		{kernels.NewGEMM(8, 1), 1.47},
		{kernels.NewLavaMD(2, 3, 1), 1.33},
		{kernels.NewLUD(8, 1), 1.00},
	}
	for _, c := range cases {
		d := mapKernel(t, c.k, fp.Double, 1).Resources["vregs"]
		s := mapKernel(t, c.k, fp.Single, 1).Resources["vregs"]
		if got := s / d; got < c.boost-0.02 || got > c.boost+0.02 {
			t.Errorf("%s: single/double register ratio %.2f, want %.2f", c.k.Name(), got, c.boost)
		}
	}
}

// Fig. 6 shape: single SDC exposure exceeds double for LavaMD and MxM;
// LUD is equal. (Exposure drives FIT at equal propagation, which Fig. 7
// shows is precision-independent.)
func TestSDCExposureShape(t *testing.T) {
	rate := func(k kernels.Kernel, f fp.Format) float64 {
		return mapKernel(t, k, f, 1).ExposureFor(arch.FunctionalUnit).Rate()
	}
	for _, k := range []kernels.Kernel{kernels.NewGEMM(8, 1), kernels.NewLavaMD(2, 3, 1)} {
		s, d := rate(k, fp.Single), rate(k, fp.Double)
		if !(s > d) {
			t.Errorf("%s: single FU exposure %v not above double %v", k.Name(), s, d)
		}
	}
	lud := kernels.NewLUD(8, 1)
	s, d := rate(lud, fp.Single), rate(lud, fp.Double)
	if s != d {
		t.Errorf("LUD: single FU exposure %v != double %v", s, d)
	}
}

// Fig. 6: DUE rises with single precision for all codes (16 SP lanes
// carry twice the control bits of 8 DP lanes).
func TestDUEExposureDoublesForSingle(t *testing.T) {
	for _, k := range []kernels.Kernel{kernels.NewGEMM(8, 1), kernels.NewLavaMD(2, 3, 1), kernels.NewLUD(8, 1)} {
		s := mapKernel(t, k, fp.Single, 1).ExposureFor(arch.ControlLogic)
		d := mapKernel(t, k, fp.Double, 1).ExposureFor(arch.ControlLogic)
		if s.Rate() != 2*d.Rate() {
			t.Errorf("%s: control exposure single %v != 2x double %v", k.Name(), s.Rate(), d.Rate())
		}
		if s.DUEFraction <= 0 {
			t.Errorf("%s: control exposure without DUE fraction", k.Name())
		}
	}
}

func TestRegisterFileProtected(t *testing.T) {
	m := mapKernel(t, kernels.NewGEMM(8, 1), fp.Single, 1)
	rf := m.ExposureFor(arch.RegisterFile)
	if !rf.Protected {
		t.Error("KNC register file must be MCA/ECC protected")
	}
}

// Table 2 shape: single is ~1.6x faster for LavaMD and LUD
// (compute-bound, 16 vs 8 lanes at imperfect efficiency) but ~13% slower
// for MxM (prefetch-limited).
func TestTimingShapeMatchesTable2(t *testing.T) {
	ratio := func(k kernels.Kernel) float64 {
		// Paper-scale op counts keep the modeled times well above the
		// nanosecond resolution of time.Duration.
		d := mapKernel(t, k, fp.Double, 1e7).Time.Seconds()
		s := mapKernel(t, k, fp.Single, 1e7).Time.Seconds()
		return d / s
	}
	if r := ratio(kernels.NewLavaMD(2, 3, 1)); r < 1.45 || r > 1.85 {
		t.Errorf("LavaMD double/single = %.2f, Table 2 gives 1.63", r)
	}
	if r := ratio(kernels.NewLUD(8, 1)); r < 1.4 || r > 1.75 {
		t.Errorf("LUD double/single = %.2f, Table 2 gives 1.55", r)
	}
	if r := ratio(kernels.NewGEMM(8, 1)); r < 0.80 || r > 0.95 {
		t.Errorf("MxM double/single = %.2f, Table 2 gives 0.88 (single slower)", r)
	}
}

// Paper-scale absolute time: MxM 2048 should land near Table 2's 10.6 s
// for double.
func TestAbsoluteMxMTime(t *testing.T) {
	k := kernels.NewGEMM(16, 1)
	// ops scale from 16^3 to 2048^3.
	scale := float64(2048*2048*2048) / float64(16*16*16)
	td := mapKernel(t, k, fp.Double, scale).Time.Seconds()
	if td < 8 || td > 13.5 {
		t.Errorf("modeled double MxM(2048) = %.1fs, Table 2 reports 10.6s", td)
	}
}

func TestUnknownKernelDefaultProfile(t *testing.T) {
	m := mapKernel(t, kernels.NewMicro(kernels.MicroADD, 4, 10, 1), fp.Single, 1e7)
	if m.Resources["vregs"] <= 0 {
		t.Error("default profile should allocate registers")
	}
}

func TestMapRejectsNilKernel(t *testing.T) {
	if _, err := New().Map(arch.Workload{}, fp.Single); err == nil {
		t.Error("nil kernel accepted")
	}
}
