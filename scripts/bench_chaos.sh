#!/usr/bin/env bash
# Measures the cost of the checkpoint I/O seam: the same checkpointed
# injection campaign is benchmarked writing straight to an in-memory
# filesystem (BenchmarkInjectionCampaignCheckpoint) and through the
# disarmed chaos fault-injection layer
# (BenchmarkInjectionCampaignChaosOff), and benchdiff -overhead gates
# the ns/op delta. The contract is <1%: the exec.FS interface exists so
# the soak harness can inject failures, and production campaigns — which
# never link the chaos layer at all — must not pay for that seam beyond
# interface-call indirection.
#
# Usage:
#   scripts/bench_chaos.sh                  # gate at 1%
#   OVERHEAD_GATE=3 scripts/bench_chaos.sh  # loosen on noisy machines
#   BENCHTIME=5s scripts/bench_chaos.sh     # steadier readings
set -euo pipefail
cd "$(dirname "$0")/.."

gate="${OVERHEAD_GATE:-1}"
snapshot="$(mktemp -t bench_chaos.XXXXXX.json)"
trap 'rm -f "$snapshot"' EXIT

BENCH_OUT="$snapshot" BENCH_RE='^BenchmarkInjectionCampaign(Checkpoint|ChaosOff)$' \
    BENCHTIME="${BENCHTIME:-2s}" scripts/bench.sh

echo
go run ./cmd/benchdiff -overhead InjectionCampaignCheckpoint=InjectionCampaignChaosOff \
    -fail-over "$gate" "$snapshot"
