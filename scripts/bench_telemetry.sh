#!/usr/bin/env bash
# Measures the cost of the observability stack: the same injection
# campaign is benchmarked with telemetry off (BenchmarkInjectionCampaign)
# and fully on (BenchmarkInjectionCampaignTelemetry — counters enabled,
# every event encoded into a discarded sink), and benchdiff -overhead
# gates the ns/op delta. The contract is <2%: counters are always-on
# atomic adds, hot loops accumulate plain fields, and sink work happens
# per campaign, not per operation.
#
# Usage:
#   scripts/bench_telemetry.sh                  # gate at 2%
#   OVERHEAD_GATE=5 scripts/bench_telemetry.sh  # loosen on noisy machines
#   BENCHTIME=5s scripts/bench_telemetry.sh     # steadier readings
set -euo pipefail
cd "$(dirname "$0")/.."

gate="${OVERHEAD_GATE:-2}"
snapshot="$(mktemp -t bench_telemetry.XXXXXX.json)"
trap 'rm -f "$snapshot"' EXIT

BENCH_OUT="$snapshot" BENCH_RE='^BenchmarkInjectionCampaign(Telemetry)?$' \
    BENCHTIME="${BENCHTIME:-2s}" scripts/bench.sh

echo
go run ./cmd/benchdiff -overhead InjectionCampaign=InjectionCampaignTelemetry \
    -fail-over "$gate" "$snapshot"
