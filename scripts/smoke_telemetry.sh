#!/usr/bin/env bash
# Proves the observe-only telemetry contract end to end on a real
# campaign: the same carolfi invocation runs with telemetry off and on,
# and the campaign output (tables, PVF, per-stratum rows) must be
# byte-identical — instrumentation may watch the run but never steer
# it. The JSONL event log from the telemetry-on run is then validated
# against the documented schema (DESIGN.md "Telemetry") and summarized.
#
# The event log is left at $TELEMETRY_OUT (default telemetry-smoke.jsonl
# in the repo root) so CI can upload it as an artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${TELEMETRY_OUT:-telemetry-smoke.jsonl}"
args=(-kernel mxm -size 8 -faults 200 -strata 3 -adaptive -seed 42 -quiet)

plain="$(mktemp -t carolfi_plain.XXXXXX)"
instrumented="$(mktemp -t carolfi_telemetry.XXXXXX)"
trap 'rm -f "$plain" "$instrumented"' EXIT

echo "carolfi ${args[*]}"
go run ./cmd/carolfi "${args[@]}" > "$plain"

echo "carolfi ${args[*]} -telemetry $out"
go run ./cmd/carolfi "${args[@]}" -telemetry "$out" > "$instrumented"

if ! cmp -s "$plain" "$instrumented"; then
    echo "FAIL: campaign output changed when telemetry was enabled" >&2
    diff "$plain" "$instrumented" >&2 || true
    exit 1
fi
echo "campaign output is byte-identical with telemetry on"

echo
go run ./cmd/mixedreltel validate "$out"
go run ./cmd/mixedreltel summary "$out"
