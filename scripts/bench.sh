#!/usr/bin/env bash
# Runs the benchmark suite and records the results as BENCH_<date>.json
# in the repo root, so performance changes can be compared run-to-run
# (see the benchmark table in EXPERIMENTS.md).
#
# Usage:
#   scripts/bench.sh                 # experiment + campaign benchmarks
#   BENCH_RE=Fig3 scripts/bench.sh   # restrict to matching benchmarks
#   BENCHTIME=5x scripts/bench.sh    # more iterations per benchmark
#
# Snapshot naming: the day's newest results always live at the plain
# BENCH_<date>.json. Re-running on the same day first moves the existing
# file to BENCH_<date>.<n>.json, with n counting up from 0 — so within
# one day the history reads .0 (oldest), .1, ..., plain .json (newest),
# and across days the date orders everything. cmd/benchdiff understands
# this scheme: with no arguments it deterministically picks the two
# newest snapshots (numeric suffix order, so .10 follows .9) and diffs
# them, which is how this script prints its closing comparison.
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${BENCH_RE:-.}"
benchtime="${BENCHTIME:-1x}"
today="$(date +%Y%m%d)"

# BENCH_OUT redirects the snapshot to an explicit path (a scratch file
# for one-off comparisons like scripts/bench_telemetry.sh), skipping
# both the same-day rotation and the closing benchdiff — those only
# make sense for the dated history in the repo root.
out_file="${BENCH_OUT:-BENCH_${today}.json}"

# A same-day rerun snapshots the existing file to the next free
# BENCH_<date>.<n>.json before the new results take the plain name, so
# history is never overwritten (see the naming scheme above).
if [[ -z "${BENCH_OUT:-}" && -e "$out_file" ]]; then
    n=0
    while [[ -e "BENCH_${today}.${n}.json" ]]; do n=$((n + 1)); done
    mv "$out_file" "BENCH_${today}.${n}.json"
fi

raw=$(go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem .)
echo "$raw"

echo "$raw" | awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = 0; bop = 0; aop = 0; extra = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op")     ns  = $(i - 1)
        if ($i == "B/op")      bop = $(i - 1)
        if ($i == "allocs/op") aop = $(i - 1)
        # Custom metrics from b.ReportMetric — the sampling-engine
        # benchmarks report the samples a campaign spent and the
        # realized uniform-vs-stratified reduction factor.
        if ($i == "samples/op")    extra = extra sprintf(", \"samples_per_op\": %s", $(i - 1))
        if ($i == "xreduction/op") extra = extra sprintf(", \"x_reduction\": %s", $(i - 1))
    }
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s}", \
        name, $2, ns, bop, aop, extra
}
END { print "\n]" }' > "$out_file"

echo
echo "wrote $out_file"

# An explicit BENCH_OUT is a one-off recording, not part of the dated
# history — skip the closing comparison.
if [[ -n "${BENCH_OUT:-}" ]]; then
    exit 0
fi

# benchdiff's zero-argument mode resolves the latest (baseline, new)
# pair from the scheme above; with only one snapshot it lists it.
echo
go run ./cmd/benchdiff
