#!/usr/bin/env bash
# Runs the benchmark suite and records the results as BENCH_<date>.json
# in the repo root, so performance changes can be compared run-to-run
# (see the benchmark table in EXPERIMENTS.md).
#
# Usage:
#   scripts/bench.sh                 # experiment + campaign benchmarks
#   BENCH_RE=Fig3 scripts/bench.sh   # restrict to matching benchmarks
#   BENCHTIME=5x scripts/bench.sh    # more iterations per benchmark
set -euo pipefail
cd "$(dirname "$0")/.."

pattern="${BENCH_RE:-.}"
benchtime="${BENCHTIME:-1x}"
today="$(date +%Y%m%d)"
out_file="BENCH_${today}.json"

# Pick the comparison baseline before writing anything. A same-day rerun
# snapshots the existing file to BENCH_<date>.<n>.json (which sorts
# before the plain .json, keeping the newest results at the expected
# name) so history is never overwritten.
prev=""
if [[ -e "$out_file" ]]; then
    n=0
    while [[ -e "BENCH_${today}.${n}.json" ]]; do n=$((n + 1)); done
    prev="BENCH_${today}.${n}.json"
    mv "$out_file" "$prev"
else
    prev=$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)
fi

raw=$(go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem .)
echo "$raw"

echo "$raw" | awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = 0; bop = 0; aop = 0
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op")     ns  = $(i - 1)
        if ($i == "B/op")      bop = $(i - 1)
        if ($i == "allocs/op") aop = $(i - 1)
    }
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, $2, ns, bop, aop
}
END { print "\n]" }' > "$out_file"

echo
echo "wrote $out_file"

if [[ -n "$prev" && "$prev" != "$out_file" ]]; then
    echo
    go run ./cmd/benchdiff "$prev" "$out_file"
else
    echo
    go run ./cmd/benchdiff "$out_file"
fi
