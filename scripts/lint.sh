#!/usr/bin/env bash
# Runs the static-analysis gate: go vet plus mixedrelvet, the repo's own
# invariant checker (see DESIGN.md "Static invariants"). Both must exit
# clean for make verify to pass.
#
# Usage:
#   scripts/lint.sh                 # whole tree
#   scripts/lint.sh ./internal/...  # restrict the mixedrelvet half
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
patterns=("${@:-./...}")

echo "go vet ./..."
"$GO" vet ./...

echo "mixedrelvet ${patterns[*]}"
"$GO" run ./cmd/mixedrelvet "${patterns[@]}"
