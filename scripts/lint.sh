#!/usr/bin/env bash
# Runs the static-analysis gate: go vet plus mixedrelvet, the repo's own
# invariant checker (see DESIGN.md "Static invariants"). Both must exit
# clean for make verify to pass.
#
# Restricting patterns apply to both halves of the gate; mixedrelvet
# still analyzes the transitive imports of the restricted set so
# cross-package facts stay sound.
#
# Usage:
#   scripts/lint.sh                 # whole tree
#   scripts/lint.sh ./internal/...  # restrict both checkers
set -euo pipefail
cd "$(dirname "$0")/.."

GO="${GO:-go}"
patterns=("${@:-./...}")

echo "go vet ${patterns[*]}"
"$GO" vet "${patterns[@]}"

echo "mixedrelvet ${patterns[*]}"
"$GO" run ./cmd/mixedrelvet "${patterns[@]}"
