package mixedrel_test

import (
	"testing"

	"mixedrel"
)

// Every paper table and figure has a benchmark that regenerates it.
// Campaign sizes are reduced (Quick caps at 250 strikes/faults per
// configuration) so a full -bench=. pass stays tractable; run
// cmd/reproduce for paper-sized campaigns.

func benchExperiment(b *testing.B, id string) {
	cfg := mixedrel.DefaultReproConfig()
	cfg.Quick = true
	cfg.Trials = 100
	cfg.Faults = 100
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mixedrel.Reproduce(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1FPGAExec(b *testing.B)        { benchExperiment(b, "table1") }
func BenchmarkFig2FPGAResources(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig3FPGABeam(b *testing.B)          { benchExperiment(b, "fig3") }
func BenchmarkFig4FPGATRE(b *testing.B)           { benchExperiment(b, "fig4") }
func BenchmarkFig5FPGAMEBF(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkTable2PhiExec(b *testing.B)         { benchExperiment(b, "table2") }
func BenchmarkFig6PhiBeam(b *testing.B)           { benchExperiment(b, "fig6") }
func BenchmarkFig7PhiPVF(b *testing.B)            { benchExperiment(b, "fig7") }
func BenchmarkFig8PhiTRE(b *testing.B)            { benchExperiment(b, "fig8") }
func BenchmarkFig9PhiMEBF(b *testing.B)           { benchExperiment(b, "fig9") }
func BenchmarkTable3GPUExec(b *testing.B)         { benchExperiment(b, "table3") }
func BenchmarkFig10aGPUMicroBeam(b *testing.B)    { benchExperiment(b, "fig10a") }
func BenchmarkFig10bGPUCodesBeam(b *testing.B)    { benchExperiment(b, "fig10b") }
func BenchmarkFig10cGPUYOLOBeam(b *testing.B)     { benchExperiment(b, "fig10c") }
func BenchmarkFig11aGPUMicroTRE(b *testing.B)     { benchExperiment(b, "fig11a") }
func BenchmarkFig11bGPUCodesTRE(b *testing.B)     { benchExperiment(b, "fig11b") }
func BenchmarkFig11cYOLOCriticality(b *testing.B) { benchExperiment(b, "fig11c") }
func BenchmarkFig12GPUAVF(b *testing.B)           { benchExperiment(b, "fig12") }
func BenchmarkFig13GPUMEBF(b *testing.B)          { benchExperiment(b, "fig13") }
func BenchmarkExtBF16(b *testing.B)               { benchExperiment(b, "ext-bf16") }
func BenchmarkExtMBU(b *testing.B)                { benchExperiment(b, "ext-mbu") }
func BenchmarkExtAccumulation(b *testing.B)       { benchExperiment(b, "ext-accum") }
func BenchmarkExtMitigation(b *testing.B)         { benchExperiment(b, "ext-mitigation") }
func BenchmarkExtSolver(b *testing.B)             { benchExperiment(b, "ext-solver") }

// ---- substrate micro-benchmarks --------------------------------------

func BenchmarkHalfArithmetic(b *testing.B) {
	env := mixedrel.NewMachine(mixedrel.Half)
	x := env.FromFloat64(1.5)
	y := env.FromFloat64(0.75)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = env.FMA(x, y, y)
		x = env.Mul(x, y)
		x = env.Add(x, y)
	}
	benchSink = uint64(x)
}

func BenchmarkDoubleArithmetic(b *testing.B) {
	env := mixedrel.NewMachine(mixedrel.Double)
	x := env.FromFloat64(1.5)
	y := env.FromFloat64(0.75)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = env.FMA(x, y, y)
		x = env.Mul(x, y)
		x = env.Add(x, y)
	}
	benchSink = uint64(x)
}

func BenchmarkGEMMGolden(b *testing.B) {
	k := mixedrel.NewGEMM(32, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSinkSlice = mixedrel.Golden(k, mixedrel.Single)
	}
}

func BenchmarkMNISTInference(b *testing.B) {
	k := mixedrel.NewMNIST(1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSinkSlice = mixedrel.Golden(k, mixedrel.Half)
	}
}

func BenchmarkYOLOInference(b *testing.B) {
	k := mixedrel.NewYOLO(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSinkSlice = mixedrel.Golden(k, mixedrel.Half)
	}
}

func BenchmarkInjectionCampaign(b *testing.B) {
	k := mixedrel.NewGEMM(12, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := mixedrel.InjectionCampaign{Kernel: k, Format: mixedrel.Single,
			Faults: 50, Seed: uint64(i)}
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBeamCampaign(b *testing.B) {
	gpu := mixedrel.NewGPU()
	m, err := gpu.Map(mixedrel.NewWorkload(mixedrel.NewGEMM(12, 1), 1e6, 1e4), mixedrel.Half)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (mixedrel.BeamExperiment{Mapping: m, Trials: 50, Seed: uint64(i)}).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	benchSink      uint64
	benchSinkSlice []float64
)
