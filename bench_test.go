package mixedrel_test

import (
	"io"
	"testing"

	"mixedrel"
	"mixedrel/internal/chaos"
	"mixedrel/internal/stats"
	"mixedrel/internal/telemetry"
)

// Every paper table and figure has a benchmark that regenerates it.
// Campaign sizes are reduced (Quick caps at 250 strikes/faults per
// configuration) so a full -bench=. pass stays tractable; run
// cmd/reproduce for paper-sized campaigns.

func benchExperiment(b *testing.B, id string) {
	cfg := mixedrel.DefaultReproConfig()
	cfg.Quick = true
	cfg.Trials = 100
	cfg.Faults = 100
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mixedrel.Reproduce(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1FPGAExec(b *testing.B)        { benchExperiment(b, "table1") }
func BenchmarkFig2FPGAResources(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig3FPGABeam(b *testing.B)          { benchExperiment(b, "fig3") }
func BenchmarkFig4FPGATRE(b *testing.B)           { benchExperiment(b, "fig4") }
func BenchmarkFig5FPGAMEBF(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkTable2PhiExec(b *testing.B)         { benchExperiment(b, "table2") }
func BenchmarkFig6PhiBeam(b *testing.B)           { benchExperiment(b, "fig6") }
func BenchmarkFig7PhiPVF(b *testing.B)            { benchExperiment(b, "fig7") }
func BenchmarkFig8PhiTRE(b *testing.B)            { benchExperiment(b, "fig8") }
func BenchmarkFig9PhiMEBF(b *testing.B)           { benchExperiment(b, "fig9") }
func BenchmarkTable3GPUExec(b *testing.B)         { benchExperiment(b, "table3") }
func BenchmarkFig10aGPUMicroBeam(b *testing.B)    { benchExperiment(b, "fig10a") }
func BenchmarkFig10bGPUCodesBeam(b *testing.B)    { benchExperiment(b, "fig10b") }
func BenchmarkFig10cGPUYOLOBeam(b *testing.B)     { benchExperiment(b, "fig10c") }
func BenchmarkFig11aGPUMicroTRE(b *testing.B)     { benchExperiment(b, "fig11a") }
func BenchmarkFig11bGPUCodesTRE(b *testing.B)     { benchExperiment(b, "fig11b") }
func BenchmarkFig11cYOLOCriticality(b *testing.B) { benchExperiment(b, "fig11c") }
func BenchmarkFig12GPUAVF(b *testing.B)           { benchExperiment(b, "fig12") }
func BenchmarkFig13GPUMEBF(b *testing.B)          { benchExperiment(b, "fig13") }
func BenchmarkExtBF16(b *testing.B)               { benchExperiment(b, "ext-bf16") }
func BenchmarkExtMBU(b *testing.B)                { benchExperiment(b, "ext-mbu") }
func BenchmarkExtAccumulation(b *testing.B)       { benchExperiment(b, "ext-accum") }
func BenchmarkExtMitigation(b *testing.B)         { benchExperiment(b, "ext-mitigation") }
func BenchmarkExtSolver(b *testing.B)             { benchExperiment(b, "ext-solver") }

// ---- substrate micro-benchmarks --------------------------------------

func BenchmarkHalfArithmetic(b *testing.B) {
	env := mixedrel.NewMachine(mixedrel.Half)
	x := env.FromFloat64(1.5)
	y := env.FromFloat64(0.75)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = env.FMA(x, y, y)
		x = env.Mul(x, y)
		x = env.Add(x, y)
	}
	benchSink = uint64(x)
}

func BenchmarkDoubleArithmetic(b *testing.B) {
	env := mixedrel.NewMachine(mixedrel.Double)
	x := env.FromFloat64(1.5)
	y := env.FromFloat64(0.75)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = env.FMA(x, y, y)
		x = env.Mul(x, y)
		x = env.Add(x, y)
	}
	benchSink = uint64(x)
}

func BenchmarkGEMMGolden(b *testing.B) {
	k := mixedrel.NewGEMM(32, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSinkSlice = mixedrel.Golden(k, mixedrel.Single)
	}
}

func BenchmarkMNISTInference(b *testing.B) {
	k := mixedrel.NewMNIST(1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSinkSlice = mixedrel.Golden(k, mixedrel.Half)
	}
}

func BenchmarkYOLOInference(b *testing.B) {
	k := mixedrel.NewYOLO(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSinkSlice = mixedrel.Golden(k, mixedrel.Half)
	}
}

func BenchmarkInjectionCampaign(b *testing.B) {
	k := mixedrel.NewGEMM(12, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := mixedrel.InjectionCampaign{Kernel: k, Format: mixedrel.Single,
			Faults: 50, Seed: uint64(i)}
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInjectionCampaignTelemetry is the same campaign as
// BenchmarkInjectionCampaign with the full observability stack live:
// counters enabled, every event encoded into a discarded sink. The
// pair feeds `benchdiff -overhead`, which gates the instrumentation
// cost at <2% ns/op (always-on atomic counters are cheap; the sink
// work happens per campaign, not per operation).
func BenchmarkInjectionCampaignTelemetry(b *testing.B) {
	telemetry.SetEnabled(true)
	telemetry.SetSink(io.Discard)
	defer func() {
		telemetry.SetEnabled(false)
		telemetry.SetSink(nil)
	}()
	k := mixedrel.NewGEMM(12, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := mixedrel.InjectionCampaign{Kernel: k, Format: mixedrel.Single,
			Faults: 50, Seed: uint64(i)}
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInjectionCampaignCheckpoint is BenchmarkInjectionCampaign
// with every sample journaled to an in-memory filesystem. In-memory on
// purpose: a real fsync costs milliseconds and would swamp the
// indirection cost the bench-chaos gate wants to see.
func BenchmarkInjectionCampaignCheckpoint(b *testing.B) {
	k := mixedrel.NewGEMM(12, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := mixedrel.InjectionCampaign{Kernel: k, Format: mixedrel.Single,
			Faults: 50, Seed: uint64(i),
			Checkpoint: &mixedrel.Checkpoint{Path: "bench.jsonl", FS: chaos.NewNullFS()}}
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInjectionCampaignChaosOff is the same checkpointed campaign
// with the chaos fault-injection layer in the I/O path but disarmed.
// The pair feeds `benchdiff -overhead` (make bench-chaos), which gates
// the seam's pure indirection cost at <1% ns/op: production campaigns
// never link the chaos layer, but the exec.FS interface they do go
// through must stay free.
func BenchmarkInjectionCampaignChaosOff(b *testing.B) {
	k := mixedrel.NewGEMM(12, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fs := &chaos.FS{Inner: chaos.NewNullFS(), Seed: uint64(i),
			PWrite: 1, PSync: 1, PShortWrite: 1, Disarmed: true}
		c := mixedrel.InjectionCampaign{Kernel: k, Format: mixedrel.Single,
			Faults: 50, Seed: uint64(i),
			Checkpoint: &mixedrel.Checkpoint{Path: "bench.jsonl", FS: fs}}
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBeamCampaign(b *testing.B) {
	gpu := mixedrel.NewGPU()
	m, err := gpu.Map(mixedrel.NewWorkload(mixedrel.NewGEMM(12, 1), 1e6, 1e4), mixedrel.Half)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (mixedrel.BeamExperiment{Mapping: m, Trials: 50, Seed: uint64(i)}).Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- sampling-engine benchmarks --------------------------------------

// samplingBenchCampaign is the reference campaign for the sampling
// benchmarks and the EXPERIMENTS.md comparison table: LUD(12) in
// single precision, all three fault sites, default strata. The seed is
// fixed so the custom metrics (samples spent, realized reduction) are
// reproducible run to run.
func samplingBenchCampaign(sp *mixedrel.Sampling) mixedrel.InjectionCampaign {
	return mixedrel.InjectionCampaign{
		Kernel: mixedrel.NewLUD(12, 1),
		Format: mixedrel.Single,
		Faults: 40000,
		Seed:   7,
		Sites: []mixedrel.Site{
			mixedrel.SiteOperand, mixedrel.SiteMemory, mixedrel.SiteControl,
		},
		Sampling: sp,
	}
}

// BenchmarkStratifiedCampaign times the stratified machinery itself on
// a fixed proportional budget — the overhead of space construction,
// per-stratum substreams and post-stratified assembly relative to the
// uniform path.
func BenchmarkStratifiedCampaign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := samplingBenchCampaign(&mixedrel.Sampling{})
		c.Faults = 600
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveCampaign runs the adaptive campaign to a 0.01 CI
// half-width and reports the samples it actually spent before the
// sequential stop.
func BenchmarkAdaptiveCampaign(b *testing.B) {
	b.ReportAllocs()
	var spent float64
	for i := 0; i < b.N; i++ {
		c := samplingBenchCampaign(&mixedrel.Sampling{Adaptive: true, CIHalfWidth: 0.01})
		res, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !res.EarlyStopped {
			b.Fatalf("adaptive campaign spent the full budget (%d samples) without converging", res.Faults)
		}
		spent = float64(res.Faults)
	}
	b.ReportMetric(spent, "samples/op")
}

// BenchmarkSamplingEfficiency reports the realized variance-reduction
// factor: uniform samples a Wilson interval would need at the
// stratified point estimates (the binding one of P(SDC) and P(DUE))
// divided by what the adaptive campaign actually spent.
func BenchmarkSamplingEfficiency(b *testing.B) {
	const hw = 0.01
	b.ReportAllocs()
	var spent, reduction float64
	for i := 0; i < b.N; i++ {
		c := samplingBenchCampaign(&mixedrel.Sampling{Adaptive: true, CIHalfWidth: hw})
		res, err := c.Run()
		if err != nil {
			b.Fatal(err)
		}
		need := stats.WilsonSamplesFor(res.StratifiedPVF, hw, 0.95)
		if d := stats.WilsonSamplesFor(res.StratifiedPDUE, hw, 0.95); d > need {
			need = d
		}
		spent = float64(res.Faults)
		reduction = float64(need) / spent
	}
	b.ReportMetric(spent, "samples/op")
	b.ReportMetric(reduction, "xreduction/op")
}

var (
	benchSink      uint64
	benchSinkSlice []float64
)
