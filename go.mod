module mixedrel

go 1.22
