// Command mixedreltel works with the JSONL telemetry event logs that
// carolfi and sweep write with -telemetry: it validates a log against
// the documented schema (see DESIGN.md "Telemetry") and summarizes one
// for a quick look without pulling in jq.
//
// Usage:
//
//	mixedreltel validate FILE    exit 0 iff FILE is schema-valid
//	mixedreltel summary FILE     per-event counts and the final counters
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"mixedrel/internal/telemetry"
)

func main() {
	if len(os.Args) != 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()

	switch cmd {
	case "validate":
		n, err := telemetry.ValidateJSONL(f)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: %d events, schema-valid\n", path, n)
	case "summary":
		if err := summarize(f); err != nil {
			fail(err)
		}
	default:
		usage()
	}
}

// summarize prints per-event counts in name order, then the counter
// values of the last "counters" event — the final snapshot the CLIs
// emit at shutdown.
func summarize(f *os.File) error {
	counts := make(map[string]int)
	var finalCounters map[string]any
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		event, _ := obj["event"].(string)
		if event == "" {
			return fmt.Errorf("line %d: missing event name", line)
		}
		counts[event]++
		if event == "counters" {
			finalCounters = obj
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%d events\n", line)
	for _, name := range names {
		fmt.Printf("  %-16s %d\n", name, counts[name])
	}
	if finalCounters != nil {
		fmt.Println("final counters:")
		keys := make([]string, 0, len(finalCounters))
		for k := range finalCounters {
			switch k {
			case "ts", "seq", "event":
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-28s %v\n", k, finalCounters[k])
		}
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mixedreltel (validate|summary) FILE")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mixedreltel:", err)
	os.Exit(1)
}
