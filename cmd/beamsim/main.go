// Command beamsim runs a single simulated neutron-beam campaign: pick a
// device, a kernel, and a precision; get SDC/DUE FIT rates, the outcome
// breakdown per resource class, and the TRE FIT-reduction curve.
//
// Example:
//
//	beamsim -device gpu -kernel mxm -format half -trials 5000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"mixedrel"
	"mixedrel/internal/arch"
	"mixedrel/internal/exec"
)

func main() {
	deviceName := flag.String("device", "gpu", "device model: fpga, xeonphi, gpu")
	kernelName := flag.String("kernel", "mxm", "kernel: mxm, lavamd, lud, hotspot, cg, micro-add, micro-mul, micro-fma, mnist, yolo")
	formatName := flag.String("format", "single", "precision: half, single, double")
	trials := flag.Int("trials", 2000, "simulated strikes")
	seed := flag.Uint64("seed", 1, "campaign seed")
	size := flag.Int("size", 16, "kernel size parameter (matrix n, micro ops/thread)")
	opScale := flag.Float64("opscale", 1e6, "paper-scale multiplier for dynamic operations")
	dataScale := flag.Float64("datascale", 1e3, "paper-scale multiplier for resident data")
	jsonOut := flag.Bool("json", false, "emit the raw campaign result as JSON")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "scheduler goroutine bound for this process")
	sampleWorkers := flag.Int("sample-workers", 1, "beam-trial goroutines (>1 changes the sample but stays deterministic)")
	flag.Parse()

	exec.SetMaxWorkers(*workers)

	device, err := pickDevice(*deviceName)
	if err != nil {
		fail(err)
	}
	kernel, err := pickKernel(*kernelName, *size, *seed)
	if err != nil {
		fail(err)
	}
	format, err := pickFormat(*formatName)
	if err != nil {
		fail(err)
	}
	if !device.Supports(format) {
		fail(fmt.Errorf("%s does not implement %v", device.Name(), format))
	}

	m, err := device.Map(mixedrel.NewWorkload(kernel, *opScale, *dataScale), format)
	if err != nil {
		fail(err)
	}
	res, err := mixedrel.BeamExperiment{Mapping: m, Trials: *trials, Seed: *seed,
		Workers: *sampleWorkers}.Run()
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Device, Kernel, Format string
			ExecSeconds            float64
			MEBF                   float64
			*mixedrel.BeamResult
		}{device.Name(), kernel.Name(), format.String(), m.Time.Seconds(),
			mixedrel.MEBF(res.FITSDC, m.Time), res}); err != nil {
			fail(err)
		}
		return
	}

	fmt.Printf("device    %s\nkernel    %s\nformat    %v\n", device.Name(), kernel.Name(), format)
	fmt.Printf("exec time %v (paper scale)\n", m.Time)
	fmt.Printf("exposure  %.4g bits x sigma (a.u.)\n", res.ExposureRate)
	fmt.Printf("outcomes  SDC %d | DUE %d | masked %d of %d strikes\n",
		res.SDC, res.DUE, res.Masked, res.Trials)
	fmt.Printf("FIT-SDC   %.4g  [%.4g, %.4g] 95%% CI\n", res.FITSDC, res.FITSDCLo, res.FITSDCHi)
	fmt.Printf("FIT-DUE   %.4g\n", res.FITDUE)
	fmt.Printf("MEBF      %.4g\n", mixedrel.MEBF(res.FITSDC, m.Time))
	fmt.Println("\nper resource class:")
	classes := make([]arch.ResourceClass, 0, len(res.ByClass))
	for class := range res.ByClass {
		classes = append(classes, class)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, class := range classes {
		cc := res.ByClass[class]
		fmt.Printf("  %-16v strikes %5d  SDC %5d  DUE %4d  masked %5d\n",
			class, cc.Strikes, cc.SDC, cc.DUE, cc.Masked)
	}
	fmt.Println("\nTRE curve:")
	for _, p := range mixedrel.TRECurve(res.FITSDC, res.RelErrs, nil) {
		fmt.Printf("  TRE %6.3g%%  FIT %.4g  (-%5.1f%%)\n", 100*p.TRE, p.FIT, 100*p.Reduction)
	}
}

func pickDevice(name string) (mixedrel.Device, error) {
	switch strings.ToLower(name) {
	case "fpga", "zynq":
		return mixedrel.NewFPGA(), nil
	case "xeonphi", "phi", "knc":
		return mixedrel.NewXeonPhi(), nil
	case "gpu", "volta", "titanv":
		return mixedrel.NewGPU(), nil
	}
	return nil, fmt.Errorf("unknown device %q", name)
}

func pickKernel(name string, size int, seed uint64) (mixedrel.Kernel, error) {
	switch strings.ToLower(name) {
	case "mxm", "gemm":
		return mixedrel.NewGEMM(size, seed), nil
	case "lavamd":
		return mixedrel.NewLavaMD(2, size/4+1, seed), nil
	case "lud":
		return mixedrel.NewLUD(size, seed), nil
	case "hotspot":
		return mixedrel.NewHotspot(size, 8, seed), nil
	case "cg":
		return mixedrel.NewCG(size, size, seed), nil
	case "micro-add":
		return mixedrel.NewMicro(mixedrel.MicroADD, 4, size, seed), nil
	case "micro-mul":
		return mixedrel.NewMicro(mixedrel.MicroMUL, 4, size, seed), nil
	case "micro-fma":
		return mixedrel.NewMicro(mixedrel.MicroFMA, 4, size, seed), nil
	case "mnist":
		return mixedrel.NewMNIST(1, seed), nil
	case "yolo", "yolov3":
		return mixedrel.NewYOLO(seed), nil
	}
	return nil, fmt.Errorf("unknown kernel %q", name)
}

func pickFormat(name string) (mixedrel.Format, error) {
	switch strings.ToLower(name) {
	case "half", "fp16", "binary16":
		return mixedrel.Half, nil
	case "single", "float", "fp32", "binary32":
		return mixedrel.Single, nil
	case "double", "fp64", "binary64":
		return mixedrel.Double, nil
	}
	return 0, fmt.Errorf("unknown format %q", name)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "beamsim:", err)
	os.Exit(1)
}
