// Command mixedrelstress is the chaos soak harness: it runs bounded
// rounds of campaign -> injected failure -> resume and asserts that the
// final result of every round is byte-identical to an uninterrupted
// reference run. Each round draws one adversity scenario — simulated
// crash kills, torn journal tails, transient and persistent checkpoint
// I/O faults, out-of-space degradation, context cancellation, or
// Guard-isolated kernel panics — from a seed, so any failure replays
// with the printed seed and round index.
//
// Example:
//
//	mixedrelstress -rounds 50 -seed 3 -v
//
// Exit status: 0 all rounds pass, 1 a round failed (or a config error).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"mixedrel/internal/chaos"
	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/kernels"
)

func main() {
	rounds := flag.Int("rounds", 25, "chaos rounds to run")
	seed := flag.Uint64("seed", 1, "soak seed (scenario choice, campaign seeds, fault addresses)")
	faults := flag.Int("faults", 48, "fault budget per campaign")
	size := flag.Int("size", 8, "GEMM size parameter of the workload under soak")
	workers := flag.Int("workers", 8, "campaign worker goroutines (high on purpose: the soak hunts interleaving bugs)")
	verbose := flag.Bool("v", false, "log one line per round to stderr")
	flag.Parse()

	if flag.NArg() > 0 {
		failUsage(fmt.Errorf("unexpected argument %q", flag.Arg(0)))
	}
	if *rounds <= 0 {
		failUsage(fmt.Errorf("-rounds must be positive, got %d", *rounds))
	}
	if *faults <= 0 {
		failUsage(fmt.Errorf("-faults must be positive, got %d", *faults))
	}
	if *size <= 0 {
		failUsage(fmt.Errorf("-size must be positive, got %d", *size))
	}
	if *workers <= 0 {
		failUsage(fmt.Errorf("-workers must be positive, got %d", *workers))
	}
	exec.SetMaxWorkers(runtime.GOMAXPROCS(0))

	var log io.Writer
	if *verbose {
		log = os.Stderr
	}
	cfg := chaos.Config{
		Kernel:  kernels.NewGEMM(*size, 1),
		Format:  fp.Single,
		Faults:  *faults,
		Rounds:  *rounds,
		Seed:    *seed,
		Workers: *workers,
		Log:     log,
	}
	res, err := chaos.Soak(cfg)
	if err != nil {
		fail(err)
	}
	fmt.Printf("soak ok: %s\n", res)
}

func failUsage(err error) {
	fmt.Fprintf(os.Stderr, "mixedrelstress: %v\n", err)
	flag.Usage()
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "mixedrelstress: %v\n", err)
	os.Exit(1)
}
