// Command carolfi runs a CAROL-FI-style statistical fault-injection
// campaign: N single-bit flips into a kernel's live values, one per
// execution, reporting the PVF and the error-magnitude distribution.
//
// Example:
//
//	carolfi -kernel lavamd -format double -faults 2000 -sites operand,memory
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"

	"mixedrel"
	"mixedrel/internal/exec"
	"mixedrel/internal/report"
	"mixedrel/internal/telemetry"
)

func main() {
	kernelName := flag.String("kernel", "mxm", "kernel: mxm, lavamd, lud, hotspot, cg, micro-add, micro-mul, micro-fma, mnist, yolo")
	formatName := flag.String("format", "single", "precision: half, single, double")
	faults := flag.Int("faults", 2000, "injected faults (one per execution)")
	seed := flag.Uint64("seed", 1, "campaign seed")
	size := flag.Int("size", 16, "kernel size parameter")
	sitesFlag := flag.String("sites", "operand,memory", "comma-separated fault sites: operation, operand, memory, control")
	watchdog := flag.Float64("watchdog", 0, "hang watchdog budget as a multiple of the fault-free op count (0 = default when injecting control faults)")
	compiledReplay := flag.Bool("compiled-replay", true, "serve fault-independent work from the compiled golden trace; disable to force fully interpreted execution (A/B verification, bisecting a suspected replay bug)")
	trap := flag.Bool("trap", false, "classify NaN/Inf results produced by a fault as crash-DUEs")
	checkpointPath := flag.String("checkpoint", "", "journal classified samples to this file and resume from it")
	strata := flag.Int("strata", 0, "stratify the fault budget over (op-class x bit band x kernel phase) with this many phases (0 = uniform sampling)")
	adaptive := flag.Bool("adaptive", false, "reallocate budget rounds toward high-variance strata (Neyman refinement; requires -strata)")
	ciHalfWidth := flag.Float64("ci-halfwidth", 0, "stop early once the 95% CI on P(SDC) and P(DUE) is at most this half-width (requires -strata)")
	jsonOut := flag.Bool("json", false, "emit the raw campaign result as JSON")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "scheduler goroutine bound for this process")
	sampleWorkers := flag.Int("sample-workers", 1, "injection goroutines (>1 changes the sample but stays deterministic)")
	telOpts := telemetry.AddFlags(flag.CommandLine)
	flag.Parse()

	// Validate everything up front: a bad flag must be a usage error
	// here, not a panic (or a silent hang) mid-campaign.
	if flag.NArg() > 0 {
		failUsage(fmt.Errorf("unexpected argument %q", flag.Arg(0)))
	}
	if *faults <= 0 {
		failUsage(fmt.Errorf("-faults must be positive, got %d", *faults))
	}
	if *size <= 0 {
		failUsage(fmt.Errorf("-size must be positive, got %d", *size))
	}
	if *workers <= 0 {
		failUsage(fmt.Errorf("-workers must be positive, got %d", *workers))
	}
	if *sampleWorkers <= 0 {
		failUsage(fmt.Errorf("-sample-workers must be positive, got %d", *sampleWorkers))
	}
	if *watchdog < 0 {
		failUsage(fmt.Errorf("-watchdog must be non-negative, got %g", *watchdog))
	}
	if *strata < 0 {
		failUsage(fmt.Errorf("-strata must be non-negative, got %d", *strata))
	}
	if *adaptive && *strata == 0 {
		failUsage(fmt.Errorf("-adaptive requires -strata"))
	}
	if *ciHalfWidth != 0 && *strata == 0 {
		failUsage(fmt.Errorf("-ci-halfwidth requires -strata"))
	}
	if *ciHalfWidth < 0 || *ciHalfWidth >= 0.5 {
		failUsage(fmt.Errorf("-ci-halfwidth must be in [0, 0.5), got %g", *ciHalfWidth))
	}
	if err := telOpts.Validate(); err != nil {
		failUsage(err)
	}

	exec.SetMaxWorkers(*workers)

	kernel, err := pickKernel(*kernelName, *size, *seed)
	if err != nil {
		failUsage(err)
	}
	format, err := pickFormat(*formatName)
	if err != nil {
		failUsage(err)
	}
	sites, err := pickSites(*sitesFlag)
	if err != nil {
		failUsage(err)
	}

	c := mixedrel.InjectionCampaign{
		Kernel:        kernel,
		Format:        format,
		Faults:        *faults,
		Seed:          *seed,
		Sites:         sites,
		Watchdog:      *watchdog,
		TrapNonFinite: *trap,
		Workers:       *sampleWorkers,

		// The two paths are bit-identical by construction; the switch
		// exists so a suspicious result can be re-derived without the
		// compiled trace in the loop.
		DisableCompiledReplay: !*compiledReplay,
	}
	if *checkpointPath != "" {
		c.Checkpoint = &mixedrel.Checkpoint{Path: *checkpointPath}
	}
	if *strata > 0 {
		c.Sampling = &mixedrel.Sampling{
			Phases:      *strata,
			Adaptive:    *adaptive,
			CIHalfWidth: *ciHalfWidth,
		}
	}
	// SIGINT/SIGTERM cancel the campaign instead of killing the
	// process: in-flight samples drain, the checkpoint journal (if any)
	// is flushed and synced, and the exit reports how to resume. A
	// second signal falls through to the default handler (hard kill).
	ctx, stopSignals := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	c.Context = ctx

	stopTelemetry, err := telOpts.Start()
	if err != nil {
		fail(err)
	}
	res, err := c.Run()
	if stopErr := stopTelemetry(); stopErr != nil && err == nil {
		err = stopErr
	}
	if errors.Is(err, mixedrel.ErrInterrupted) {
		failInterrupted(err, *checkpointPath)
	}
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Kernel, Format string
			*mixedrel.InjectionResult
		}{kernel.Name(), format.String(), res}); err != nil {
			fail(err)
		}
		return
	}

	fmt.Printf("kernel  %s\nformat  %v\nfaults  %d\n", kernel.Name(), format, res.Faults)
	fmt.Printf("SDCs    %d\nmasked  %d\nPVF     %.4f\n", res.SDCs, res.Masked, res.PVF)
	if n := res.DUEs(); n > 0 {
		fmt.Printf("DUEs    %d (crash %d, hang %d)\nP(DUE)  %.4f\n",
			n, res.CrashDUEs, res.HangDUEs, res.PDUE)
	}
	if len(res.Strata) > 0 {
		if res.EarlyStopped {
			fmt.Printf("stopped early: CI target reached after %d samples\n", res.Faults)
		}
		fmt.Printf("stratified PVF    %s\n", report.FormatCI(res.StratifiedPVF, res.PVFCILow, res.PVFCIHigh))
		fmt.Printf("stratified P(DUE) %s\n", report.FormatCI(res.StratifiedPDUE, res.PDUECILow, res.PDUECIHigh))
		fmt.Println()
		if err := strataTable(res).WriteASCII(os.Stdout); err != nil {
			fail(err)
		}
	}
	for _, ab := range res.Aborted {
		fmt.Printf("aborted sample %d (%s, replay seed %#x): %s\n",
			ab.Index, ab.Fault, ab.Seed, ab.Panic)
	}

	if len(res.RelErrs) > 0 {
		errs := append([]float64(nil), res.RelErrs...)
		sort.Float64s(errs)
		q := func(p float64) float64 { return errs[int(p*float64(len(errs)-1))] }
		fmt.Println("\nSDC relative-error quantiles:")
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			fmt.Printf("  p%-3.0f %.4g\n", 100*p, q(p))
		}
		fmt.Println("\nTRE curve:")
		for _, pt := range mixedrel.TRECurve(res.PVF, res.RelErrs, nil) {
			fmt.Printf("  TRE %6.3g%%  residual PVF %.4f  (-%5.1f%%)\n",
				100*pt.TRE, pt.FIT, 100*pt.Reduction)
		}
	}
}

// strataTable renders the per-stratum tallies of a stratified campaign.
func strataTable(res *mixedrel.InjectionResult) *report.Table {
	t := &report.Table{
		ID:      "strata",
		Title:   "Per-stratum fault allocation and outcomes",
		Columns: []string{"stratum", "weight", "faults", "SDCs", "DUEs", "masked", "P(SDC)"},
	}
	for _, s := range res.Strata {
		p := "n/a"
		if n := s.SDCs + s.DUEs + s.Masked; n > 0 {
			p = fmt.Sprintf("%.3f", float64(s.SDCs)/float64(n))
		}
		t.AddRow(s.Desc, fmt.Sprintf("%.5f", s.Weight),
			fmt.Sprint(s.Faults), fmt.Sprint(s.SDCs), fmt.Sprint(s.DUEs),
			fmt.Sprint(s.Masked), p)
	}
	return t
}

func pickKernel(name string, size int, seed uint64) (mixedrel.Kernel, error) {
	switch strings.ToLower(name) {
	case "mxm", "gemm":
		return mixedrel.NewGEMM(size, seed), nil
	case "lavamd":
		return mixedrel.NewLavaMD(2, size/4+1, seed), nil
	case "lud":
		return mixedrel.NewLUD(size, seed), nil
	case "hotspot":
		return mixedrel.NewHotspot(size, 8, seed), nil
	case "cg":
		return mixedrel.NewCG(size, size, seed), nil
	case "micro-add":
		return mixedrel.NewMicro(mixedrel.MicroADD, 4, size, seed), nil
	case "micro-mul":
		return mixedrel.NewMicro(mixedrel.MicroMUL, 4, size, seed), nil
	case "micro-fma":
		return mixedrel.NewMicro(mixedrel.MicroFMA, 4, size, seed), nil
	case "mnist":
		return mixedrel.NewMNIST(1, seed), nil
	case "yolo", "yolov3":
		return mixedrel.NewYOLO(seed), nil
	}
	return nil, fmt.Errorf("unknown kernel %q", name)
}

func pickFormat(name string) (mixedrel.Format, error) {
	switch strings.ToLower(name) {
	case "half", "fp16", "binary16":
		return mixedrel.Half, nil
	case "single", "float", "fp32", "binary32":
		return mixedrel.Single, nil
	case "double", "fp64", "binary64":
		return mixedrel.Double, nil
	}
	return 0, fmt.Errorf("unknown format %q", name)
}

func pickSites(s string) ([]mixedrel.Site, error) {
	var sites []mixedrel.Site
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(strings.ToLower(part)) {
		case "operation":
			sites = append(sites, mixedrel.SiteOperation)
		case "operand":
			sites = append(sites, mixedrel.SiteOperand)
		case "memory":
			sites = append(sites, mixedrel.SiteMemory)
		case "control":
			sites = append(sites, mixedrel.SiteControl)
		case "":
		default:
			return nil, fmt.Errorf("unknown fault site %q", part)
		}
	}
	if len(sites) == 0 {
		return nil, fmt.Errorf("no fault sites given")
	}
	return sites, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "carolfi:", err)
	os.Exit(1)
}

// failInterrupted reports a signal-cancelled campaign: what is safely
// journaled, how to resume, and the distinct exit code 3 so scripts
// can tell a planned interruption from a failure (1) or bad usage (2).
func failInterrupted(err error, checkpointPath string) {
	fmt.Fprintln(os.Stderr, "carolfi:", err)
	if checkpointPath != "" {
		fmt.Fprintf(os.Stderr, "carolfi: resume with the same flags and -checkpoint %s\n", checkpointPath)
	} else {
		fmt.Fprintln(os.Stderr, "carolfi: no -checkpoint was set; a re-run starts from scratch")
	}
	os.Exit(3)
}

// failUsage reports a bad invocation: the error, then the flag set's
// usage text, then a non-zero exit (the conventional usage code 2).
func failUsage(err error) {
	fmt.Fprintln(os.Stderr, "carolfi:", err)
	flag.Usage()
	os.Exit(2)
}
