// Command reproduce regenerates every table and figure of the paper
// from the simulation models. Use -only to run a single experiment and
// -quick for reduced campaign sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"mixedrel/internal/core"
	"mixedrel/internal/exec"
	"mixedrel/internal/report"
)

func main() {
	only := flag.String("only", "", "run a single experiment id (e.g. fig10a); empty runs all")
	quick := flag.Bool("quick", false, "reduced campaign sizes for a fast pass")
	seed := flag.Uint64("seed", 2019, "campaign sampling seed")
	trials := flag.Int("trials", 2000, "beam strikes per configuration")
	faults := flag.Int("faults", 2000, "injected faults per configuration")
	list := flag.Bool("list", false, "list experiment ids and exit")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "cross-configuration goroutines (campaigns run concurrently; never changes the tables)")
	sampleWorkers := flag.Int("sample-workers", 1, "beam-trial/injection goroutines inside one campaign (>1 changes the sample but stays deterministic)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	exec.SetMaxWorkers(*workers)
	cfg := core.Config{Seed: *seed, Trials: *trials, Faults: *faults, Quick: *quick,
		Workers: *workers, SampleWorkers: *sampleWorkers}

	if *list {
		for _, d := range core.Experiments {
			fmt.Printf("%-8s %s\n", d.ID, d.Title)
		}
		return
	}
	if *only != "" {
		d, ok := core.Get(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "reproduce: unknown experiment %q (try -list)\n", *only)
			os.Exit(2)
		}
		t, err := d.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
		if err := render(t, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, d := range core.Experiments {
		t, err := d.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %s: %v\n", d.ID, err)
			os.Exit(1)
		}
		if err := render(t, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
	}
}

// render writes one table in the selected output format.
func render(t *report.Table, csv bool) error {
	if csv {
		return t.WriteCSV(os.Stdout)
	}
	return t.WriteASCII(os.Stdout)
}
