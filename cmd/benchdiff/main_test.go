package main

import (
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestSortSnapshotsOrdering(t *testing.T) {
	// Scrambled input covering the whole scheme: multiple days,
	// same-day reruns with numeric (not lexicographic) suffix order,
	// the plain file as each day's newest, and non-snapshot noise.
	in := []string{
		"BENCH_20260805.json",
		"BENCH_20260805.10.json",
		"BENCH_20260803.json",
		"BENCH_20260805.2.json",
		"BENCH_20260805.0.json",
		"BENCH_20260801.1.json",
		"BENCH_20260801.json",
		"EXPERIMENTS.md",
		"BENCH_notadate.json",
		"bench.sh",
	}
	want := []string{
		"BENCH_20260801.1.json",
		"BENCH_20260801.json",
		"BENCH_20260803.json",
		"BENCH_20260805.0.json",
		"BENCH_20260805.2.json",
		"BENCH_20260805.10.json",
		"BENCH_20260805.json",
	}
	if got := sortSnapshots(in); !reflect.DeepEqual(got, want) {
		t.Errorf("sortSnapshots:\n got %v\nwant %v", got, want)
	}
	if got := sortSnapshots(nil); len(got) != 0 {
		t.Errorf("empty input gave %v", got)
	}
}

func TestFindBenchPrefixInsensitive(t *testing.T) {
	entries := map[string]entry{
		"BenchmarkInjectionCampaign":          {Name: "BenchmarkInjectionCampaign", NsPerOp: 1000},
		"BenchmarkInjectionCampaignTelemetry": {Name: "BenchmarkInjectionCampaignTelemetry", NsPerOp: 1010},
	}
	for _, name := range []string{"InjectionCampaign", "BenchmarkInjectionCampaign"} {
		e, err := findBench(entries, name)
		if err != nil {
			t.Errorf("findBench(%q): %v", name, err)
			continue
		}
		if e.NsPerOp != 1000 {
			t.Errorf("findBench(%q) ns/op = %v, want 1000", name, e.NsPerOp)
		}
	}
	if _, err := findBench(entries, "Nope"); err == nil {
		t.Error("findBench of a missing benchmark did not error")
	}
}

func TestDiffWorstRegression(t *testing.T) {
	oldE := map[string]entry{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 100},
		"BenchmarkB": {Name: "BenchmarkB", NsPerOp: 200},
		"BenchmarkGone": {Name: "BenchmarkGone", NsPerOp: 50},
	}
	newE := map[string]entry{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 150}, // +50%
		"BenchmarkB": {Name: "BenchmarkB", NsPerOp: 190}, // improvement
		"BenchmarkNew": {Name: "BenchmarkNew", NsPerOp: 10},
	}
	var buf strings.Builder
	worst := diff(&buf, oldE, newE)
	if worst != 50 {
		t.Errorf("worst regression = %v, want 50", worst)
	}
	out := buf.String()
	for _, want := range []string{"REGRESSION", "new", "removed"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	// No regressions at all reports zero (improvements don't count).
	worst = diff(io.Discard, oldE, map[string]entry{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 90},
	})
	if worst != 0 {
		t.Errorf("improvement-only worst = %v, want 0", worst)
	}
}
