package main

import (
	"reflect"
	"testing"
)

func TestSortSnapshotsOrdering(t *testing.T) {
	// Scrambled input covering the whole scheme: multiple days,
	// same-day reruns with numeric (not lexicographic) suffix order,
	// the plain file as each day's newest, and non-snapshot noise.
	in := []string{
		"BENCH_20260805.json",
		"BENCH_20260805.10.json",
		"BENCH_20260803.json",
		"BENCH_20260805.2.json",
		"BENCH_20260805.0.json",
		"BENCH_20260801.1.json",
		"BENCH_20260801.json",
		"EXPERIMENTS.md",
		"BENCH_notadate.json",
		"bench.sh",
	}
	want := []string{
		"BENCH_20260801.1.json",
		"BENCH_20260801.json",
		"BENCH_20260803.json",
		"BENCH_20260805.0.json",
		"BENCH_20260805.2.json",
		"BENCH_20260805.10.json",
		"BENCH_20260805.json",
	}
	if got := sortSnapshots(in); !reflect.DeepEqual(got, want) {
		t.Errorf("sortSnapshots:\n got %v\nwant %v", got, want)
	}
	if got := sortSnapshots(nil); len(got) != 0 {
		t.Errorf("empty input gave %v", got)
	}
}
