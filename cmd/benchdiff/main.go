// Command benchdiff compares two BENCH_<date>.json files produced by
// scripts/bench.sh and prints a per-benchmark delta table. Time
// regressions beyond a noise threshold are flagged in the rightmost
// column; by default the exit status stays 0 either way (the table is
// a review aid — benchmark machines differ run to run). Pass
// -fail-over to turn it into a gate: the exit status becomes 1 when
// any benchmark's ns/op regresses beyond the given percentage, which
// is what CI wants.
//
// Usage:
//
//	benchdiff                      # diff the two newest snapshots
//	benchdiff OLD.json NEW.json
//	benchdiff NEW.json
//	benchdiff -fail-over 25 OLD.json NEW.json   # gate: exit 1 past 25%
//
// With no arguments, benchdiff scans the working directory for
// BENCH_<date>[.<n>].json snapshots and compares the two newest. The
// ordering is deterministic: snapshots sort by date first, and within
// one day the numbered forms BENCH_<date>.0.json, .1.json, ... (the
// scheme scripts/bench.sh uses to snapshot same-day reruns, compared
// numerically, so .10 follows .9) are older than the plain
// BENCH_<date>.json, which always holds the day's newest results. The
// newest snapshot is the comparison's NEW side, the second-newest its
// baseline.
//
// The single-argument form is for the first recording on a machine:
// there is no baseline yet, so benchdiff says so and lists the new
// snapshot instead of failing with a usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// entry mirrors one scripts/bench.sh record.
type entry struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// regressionPct is the ns/op increase treated as a real regression
// rather than run-to-run noise.
const regressionPct = 10.0

// snapshotRe matches scripts/bench.sh snapshot names, capturing the
// date and the optional same-day rerun suffix.
var snapshotRe = regexp.MustCompile(`^BENCH_(\d{8})(?:\.(\d+))?\.json$`)

// sortSnapshots orders snapshot filenames oldest to newest: by date,
// then numbered same-day snapshots (.0, .1, ... compared numerically)
// before the plain .json, which scripts/bench.sh keeps as the day's
// newest recording. Non-matching names are dropped.
func sortSnapshots(names []string) []string {
	type snap struct {
		name string
		date string
		n    int // rerun suffix; the plain form sorts newest
	}
	snaps := make([]snap, 0, len(names))
	for _, name := range names {
		m := snapshotRe.FindStringSubmatch(name)
		if m == nil {
			continue
		}
		s := snap{name: name, date: m[1], n: int(^uint(0) >> 1)}
		if m[2] != "" {
			s.n, _ = strconv.Atoi(m[2])
		}
		snaps = append(snaps, s)
	}
	sort.Slice(snaps, func(i, j int) bool {
		if snaps[i].date != snaps[j].date {
			return snaps[i].date < snaps[j].date
		}
		return snaps[i].n < snaps[j].n
	})
	out := make([]string, len(snaps))
	for i, s := range snaps {
		out[i] = s.name
	}
	return out
}

// latestPair returns the two newest snapshots in the working directory
// as (baseline, current). A single snapshot returns ("", current).
func latestPair() (oldName, newName string, err error) {
	entries, err := os.ReadDir(".")
	if err != nil {
		return "", "", err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	ordered := sortSnapshots(names)
	switch len(ordered) {
	case 0:
		return "", "", fmt.Errorf("no BENCH_<date>.json snapshots in the working directory; run scripts/bench.sh first")
	case 1:
		return "", ordered[0], nil
	}
	return ordered[len(ordered)-2], ordered[len(ordered)-1], nil
}

func main() {
	failOver := flag.Float64("fail-over", 0,
		"exit with status 1 when any benchmark's ns/op regresses more than this percentage (0 = report only)")
	overhead := flag.String("overhead", "",
		"BASE=VARIANT: compare two benchmarks inside one snapshot instead of diffing snapshots (e.g. InjectionCampaign=InjectionCampaignTelemetry); the ns/op delta is gated by -fail-over")
	flag.Parse()
	if *failOver < 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: -fail-over must be non-negative, got %g\n", *failOver)
		os.Exit(2)
	}
	if *overhead != "" {
		runOverhead(*overhead, *failOver, flag.Args())
		return
	}

	var oldArg, newArg string
	switch args := flag.Args(); len(args) {
	case 0:
		var err error
		oldArg, newArg, err = latestPair()
		if err != nil {
			fatal(err)
		}
		if oldArg == "" {
			listOnly(newArg)
			return
		}
	case 1:
		// Only one recording exists — nothing to diff against.
		listOnly(args[0])
		return
	case 2:
		oldArg, newArg = args[0], args[1]
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-fail-over PCT] [[OLD.json] NEW.json]")
		os.Exit(2)
	}
	oldE, err := load(oldArg)
	if err != nil {
		fatal(err)
	}
	newE, err := load(newArg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("benchmark comparison: %s -> %s\n", oldArg, newArg)
	worst := diff(os.Stdout, oldE, newE)
	if *failOver > 0 && worst > *failOver {
		fmt.Printf("\nworst regression %.1f%% exceeds the -fail-over gate of %.1f%%\n", worst, *failOver)
		os.Exit(1)
	}
}

// runOverhead compares two benchmarks within one snapshot — the
// newest in the working directory, or the one given as the single
// argument. spec is "BASE=VARIANT"; either side may carry or omit the
// "Benchmark" prefix the snapshots record. With -fail-over, a variant
// slower than base by more than the gate exits 1 — this is how CI
// bounds the telemetry-on cost of a campaign.
func runOverhead(spec string, failOver float64, args []string) {
	eq := -1
	for i, r := range spec {
		if r == '=' {
			eq = i
			break
		}
	}
	if eq <= 0 || eq == len(spec)-1 {
		fmt.Fprintf(os.Stderr, "benchdiff: -overhead wants BASE=VARIANT, got %q\n", spec)
		os.Exit(2)
	}
	baseName, varName := spec[:eq], spec[eq+1:]

	var path string
	switch len(args) {
	case 0:
		var err error
		if _, path, err = latestPair(); err != nil {
			fatal(err)
		}
	case 1:
		path = args[0]
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff -overhead BASE=VARIANT [-fail-over PCT] [SNAPSHOT.json]")
		os.Exit(2)
	}
	entries, err := load(path)
	if err != nil {
		fatal(err)
	}
	base, err := findBench(entries, baseName)
	if err != nil {
		fatal(fmt.Errorf("%s: %v", path, err))
	}
	variant, err := findBench(entries, varName)
	if err != nil {
		fatal(fmt.Errorf("%s: %v", path, err))
	}
	if base.NsPerOp <= 0 {
		fatal(fmt.Errorf("%s: %s has non-positive ns/op", path, base.Name))
	}
	pct := (variant.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
	fmt.Printf("overhead in %s:\n", path)
	fmt.Printf("%-40s %14.0f ns/op\n", base.Name, base.NsPerOp)
	fmt.Printf("%-40s %14.0f ns/op  %+.2f%%%s\n", variant.Name, variant.NsPerOp, pct, allocNote(base, variant))
	if failOver > 0 && pct > failOver {
		fmt.Printf("\noverhead %.2f%% exceeds the -fail-over gate of %.2f%%\n", pct, failOver)
		os.Exit(1)
	}
}

// findBench resolves a benchmark by name, accepting the recorded name
// with or without its "Benchmark" prefix.
func findBench(entries map[string]entry, name string) (entry, error) {
	if e, ok := entries[name]; ok {
		return e, nil
	}
	if e, ok := entries["Benchmark"+name]; ok {
		return e, nil
	}
	return entry{}, fmt.Errorf("no benchmark %q in snapshot", name)
}

// diff renders the per-benchmark delta table to w and returns the
// worst ns/op regression percentage (0 when nothing regressed).
func diff(w io.Writer, oldE, newE map[string]entry) float64 {
	names := make([]string, 0, len(newE))
	for name := range newE {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-36s %14s %14s %9s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "")
	regressions := 0
	worst := 0.0
	for _, name := range names {
		n := newE[name]
		o, ok := oldE[name]
		if !ok {
			fmt.Fprintf(w, "%-36s %14s %14.0f %9s  new\n", name, "-", n.NsPerOp, "-")
			continue
		}
		var pct float64
		if o.NsPerOp > 0 {
			pct = (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		if pct > worst {
			worst = pct
		}
		flag := ""
		if pct > regressionPct {
			flag = "REGRESSION"
			regressions++
		}
		note := allocNote(o, n)
		fmt.Fprintf(w, "%-36s %14.0f %14.0f %+8.1f%%  %s%s\n", name, o.NsPerOp, n.NsPerOp, pct, flag, note)
	}
	removed := make([]string, 0)
	for name := range oldE {
		if _, ok := newE[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "%-36s %14.0f %14s %9s  removed\n", name, oldE[name].NsPerOp, "-", "-")
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed more than %.0f%% in ns/op\n", regressions, regressionPct)
	}
	return worst
}

// listOnly renders a lone snapshot that has no baseline to diff
// against.
func listOnly(path string) {
	onlyE, err := load(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("no baseline snapshot to compare against; %s is the first recording (%d benchmarks)\n",
		path, len(onlyE))
	fmt.Println("re-run benchdiff with two snapshots (benchdiff OLD.json NEW.json) once a second one exists")
	names := make([]string, 0, len(onlyE))
	for name := range onlyE {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-36s %14.0f ns/op\n", name, onlyE[name].NsPerOp)
	}
}

// allocNote renders the allocation movement when it changed.
func allocNote(o, n entry) string {
	if o.AllocsPerOp == n.AllocsPerOp && o.BytesPerOp == n.BytesPerOp {
		return ""
	}
	return fmt.Sprintf("  [allocs %.0f->%.0f, B/op %.0f->%.0f]",
		o.AllocsPerOp, n.AllocsPerOp, o.BytesPerOp, n.BytesPerOp)
}

func load(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	byName := make(map[string]entry, len(entries))
	for _, e := range entries {
		byName[e.Name] = e
	}
	return byName, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
