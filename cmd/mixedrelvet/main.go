// Command mixedrelvet is the repository's invariant checker: a
// multichecker driving the analyzers under internal/analysis over the
// module, built entirely on the standard library so it runs in offline
// build environments.
//
// The suite mechanically enforces what the simulator's correctness
// argument assumes: kernel arithmetic goes through fp.Env in every
// package Run reaches (softfloat), raw encodings are never treated as
// numbers (bitsops), kernel inner loops use the batch execution layer
// where one exists (batchops), results are a function of the seed alone
// and render in deterministic order (determinism), all concurrency
// stays under the bounded scheduler (boundedgo), emulated crash/hang
// aborts are recovered only by the execution engine's guard
// (panicsafety), compiled-trace serving stays behind exec/inject
// (compiledreplay), the fault-injecting checkpoint filesystem stays
// behind the soak harness (chaos), and annotated hot paths do not
// allocate (hotalloc).
//
// The driver is interprocedural: requested packages plus everything
// they transitively import are analyzed in topological order so facts
// flow across package boundaries, import-independent packages run in
// parallel, and per-package results are cached on disk (keyed by source
// content, dependency keys and the analyzer fingerprint) so a warm run
// with no source changes re-analyzes nothing.
//
// Usage:
//
//	mixedrelvet [-only name,name] [-list] [-json] [-workers n] [-cache dir] [packages...]
//
// Packages default to ./... resolved against the enclosing module. The
// cache defaults to $MIXEDRELVET_CACHE or the user cache directory;
// -cache '' disables it. The exit status is 1 if any diagnostic was
// reported, 2 on usage or load/driver failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"mixedrel/internal/analysis"
	"mixedrel/internal/analysis/suite"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	workers := flag.Int("workers", runtime.NumCPU(), "max import-independent packages analyzed in parallel")
	cacheDir := flag.String("cache", analysis.DefaultCacheDir(), "result cache directory ('' disables caching)")
	stats := flag.Bool("stats", false, "print cache hit/miss counts to stderr")
	flag.Parse()

	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mixedrelvet:", err)
		fmt.Fprintln(os.Stderr, "usage: mixedrelvet [-only name,name] [-list] [-json] [-workers n] [-cache dir] [packages...]")
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, module, err := findModule()
	if err != nil {
		fatal(err)
	}
	var cache *analysis.Cache
	if *cacheDir != "" {
		cache = &analysis.Cache{Dir: *cacheDir}
	}

	// Warm fast path: if every package in the transitive closure has a
	// cache entry under the current source hashes, serve the findings
	// without parsing a single function body.
	res, ok := analysis.TryCached(cache, root, module, patterns, analyzers, suite.Names())
	if !ok {
		loader := &analysis.Loader{Dir: root, Module: module}
		pkgs, err := loader.Load(patterns...)
		if err != nil {
			fatal(err)
		}
		cfg := analysis.Config{
			Workers: *workers,
			Cache:   cache,
			Known:   suite.Names(),
			Lookup:  loader.Lookup,
		}
		res, err = analysis.Run(cfg, pkgs, analyzers)
		if err != nil {
			printFindings(res.Findings, *jsonOut)
			fatal(err)
		}
	}
	if *stats {
		// The telemetry counters are the single source of truth: both
		// the warm fast path and the full driver account to them, and
		// TryCached's commit-on-success discipline keeps a cold-cache
		// fall-through from double-counting its partial hits.
		hits, misses := analysis.CacheStats()
		fmt.Fprintf(os.Stderr, "mixedrelvet: %d packages from cache, %d analyzed\n", hits, misses)
	}
	printFindings(res.Findings, *jsonOut)
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}

// jsonFinding is the machine-readable diagnostic shape (-json).
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func printFindings(findings []analysis.Finding, asJSON bool) {
	if !asJSON {
		for _, f := range findings {
			fmt.Println(relativize(f))
		}
		return
	}
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		f.Pos.Filename = relPath(f.Pos.Filename)
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			Package:  f.Package,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	all := suite.Analyzers()
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q in -only (use -list for the suite)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// findModule walks up from the working directory to the enclosing go.mod
// and returns its directory and module path.
func findModule() (dir, module string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// relPath shortens a path relative to the working directory when
// possible.
func relPath(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	rel, err := filepath.Rel(wd, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}

// relativize shortens a finding's path relative to the working directory
// when possible.
func relativize(f analysis.Finding) string {
	f.Pos.Filename = relPath(f.Pos.Filename)
	return f.String()
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mixedrelvet:", err)
	os.Exit(2)
}
