// Command mixedrelvet is the repository's invariant checker: a
// multichecker driving the analyzers under internal/analysis over the
// module, built entirely on the standard library so it runs in offline
// build environments.
//
// The suite mechanically enforces what the simulator's correctness
// argument assumes: kernel arithmetic goes through fp.Env (softfloat),
// raw encodings are never treated as numbers (bitsops), kernel inner
// loops use the batch execution layer where one exists (batchops),
// results are a
// function of the seed alone and render in deterministic order
// (determinism), all concurrency stays under the bounded scheduler
// (boundedgo), and emulated crash/hang aborts are recovered only by
// the execution engine's guard (panicsafety).
//
// Usage:
//
//	mixedrelvet [-only name,name] [-list] [packages...]
//
// Packages default to ./... resolved against the enclosing module. The
// exit status is 1 if any diagnostic was reported, 2 on load/driver
// failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mixedrel/internal/analysis"
	"mixedrel/internal/analysis/batchops"
	"mixedrel/internal/analysis/bitsops"
	"mixedrel/internal/analysis/boundedgo"
	"mixedrel/internal/analysis/compiledreplay"
	"mixedrel/internal/analysis/determinism"
	"mixedrel/internal/analysis/panicsafety"
	"mixedrel/internal/analysis/softfloat"
)

// suite lists every registered analyzer. Adding a new invariant checker
// means appending it here and documenting it in DESIGN.md §Static
// invariants.
var suite = []*analysis.Analyzer{
	batchops.Analyzer,
	bitsops.Analyzer,
	boundedgo.Analyzer,
	compiledreplay.Analyzer,
	determinism.Analyzer,
	panicsafety.Analyzer,
	softfloat.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, module, err := findModule()
	if err != nil {
		fatal(err)
	}
	loader := &analysis.Loader{Dir: root, Module: module}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	findings, err := analysis.RunAnalyzers(pkgs, analyzers)
	for _, f := range findings {
		fmt.Println(relativize(f))
	}
	if err != nil {
		fatal(err)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// findModule walks up from the working directory to the enclosing go.mod
// and returns its directory and module path.
func findModule() (dir, module string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// relativize shortens a finding's path relative to the working directory
// when possible.
func relativize(f analysis.Finding) string {
	wd, err := os.Getwd()
	if err != nil {
		return f.String()
	}
	rel, err := filepath.Rel(wd, f.Pos.Filename)
	if err != nil || strings.HasPrefix(rel, "..") {
		return f.String()
	}
	f.Pos.Filename = rel
	return f.String()
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mixedrelvet:", err)
	os.Exit(2)
}
