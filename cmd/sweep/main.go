// Command sweep runs a precision-reliability sweep: one beam campaign
// per (kernel size, precision) point, reporting FIT, MEBF and modeled
// execution time so the precision trade-off can be plotted as a curve
// rather than read from a single configuration.
//
// Example:
//
//	sweep -device gpu -kernel mxm -sizes 8,12,16,24 -trials 1000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"

	"mixedrel"
	"mixedrel/internal/exec"
	"mixedrel/internal/report"
	"mixedrel/internal/telemetry"
)

func main() {
	deviceName := flag.String("device", "gpu", "device model: fpga, xeonphi, gpu")
	kernelName := flag.String("kernel", "mxm", "kernel: mxm, lud, hotspot, lavamd")
	sizesFlag := flag.String("sizes", "8,12,16,24", "comma-separated kernel sizes")
	formatsFlag := flag.String("formats", "", "comma-separated precisions (default: all the device supports)")
	trials := flag.Int("trials", 1000, "beam strikes per point")
	seed := flag.Uint64("seed", 1, "campaign seed")
	opScale := flag.Float64("opscale", 1e6, "paper-scale multiplier for ops at the smallest size")
	behavioralDUE := flag.Bool("behavioral-due", false, "derive DUEs behaviorally (control-fault injection + watchdog) instead of the calibrated constant rate")
	strata := flag.Int("strata", 0, "additionally run a stratified injection campaign per point with this many kernel phases, adding a PVF CI column (0 = off)")
	adaptive := flag.Bool("adaptive", false, "Neyman-adaptive budget refinement for the stratified campaigns (requires -strata)")
	ciHalfWidth := flag.Float64("ci-halfwidth", 0, "stop each stratified campaign once the 95% CI on P(SDC)/P(DUE) is at most this half-width (requires -strata)")
	pvfFaults := flag.Int("pvf-faults", 2000, "fault budget of each per-point stratified injection campaign (with -strata)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent (size, format) campaigns (never changes the numbers)")
	sampleWorkers := flag.Int("sample-workers", 1, "beam-trial goroutines inside one campaign (>1 changes the sample but stays deterministic)")
	telOpts := telemetry.AddFlags(flag.CommandLine)
	flag.Parse()

	// Validate everything — including the kernel name, which is
	// otherwise first resolved inside the concurrent grid — before any
	// campaign starts, so a typo is a usage error and not a mid-sweep
	// failure.
	if flag.NArg() > 0 {
		failUsage(fmt.Errorf("unexpected argument %q", flag.Arg(0)))
	}
	if *trials <= 0 {
		failUsage(fmt.Errorf("-trials must be positive, got %d", *trials))
	}
	if *opScale <= 0 {
		failUsage(fmt.Errorf("-opscale must be positive, got %g", *opScale))
	}
	if *workers <= 0 {
		failUsage(fmt.Errorf("-workers must be positive, got %d", *workers))
	}
	if *sampleWorkers <= 0 {
		failUsage(fmt.Errorf("-sample-workers must be positive, got %d", *sampleWorkers))
	}
	if *strata < 0 {
		failUsage(fmt.Errorf("-strata must be non-negative, got %d", *strata))
	}
	if *adaptive && *strata == 0 {
		failUsage(fmt.Errorf("-adaptive requires -strata"))
	}
	if *ciHalfWidth != 0 && *strata == 0 {
		failUsage(fmt.Errorf("-ci-halfwidth requires -strata"))
	}
	if *ciHalfWidth < 0 || *ciHalfWidth >= 0.5 {
		failUsage(fmt.Errorf("-ci-halfwidth must be in [0, 0.5), got %g", *ciHalfWidth))
	}
	if *pvfFaults <= 0 {
		failUsage(fmt.Errorf("-pvf-faults must be positive, got %d", *pvfFaults))
	}
	if err := telOpts.Validate(); err != nil {
		failUsage(err)
	}

	exec.SetMaxWorkers(*workers)

	device, err := pickDevice(*deviceName)
	if err != nil {
		failUsage(err)
	}
	sizes, err := parseInts(*sizesFlag)
	if err != nil {
		failUsage(err)
	}
	for _, n := range sizes {
		if n <= 0 {
			failUsage(fmt.Errorf("sizes must be positive, got %d", n))
		}
	}
	formats, err := parseFormats(*formatsFlag, device)
	if err != nil {
		failUsage(err)
	}
	if _, _, err := pickKernel(*kernelName, sizes[0], *seed); err != nil {
		failUsage(err)
	}

	header := fmt.Sprintf("%-6s  %-9s  %-12s  %-12s  %-12s  %-10s",
		"size", "format", "exec time", "FIT-SDC", "FIT-DUE", "MEBF")
	if *strata > 0 {
		header += "  PVF [95% CI]"
	}
	fmt.Println(header)
	type point struct {
		n int
		f mixedrel.Format
	}
	var pts []point
	for _, n := range sizes {
		for _, f := range formats {
			pts = append(pts, point{n, f})
		}
	}
	// SIGINT/SIGTERM cancel the sweep: in-flight points drain, queued
	// points are skipped, and the exit is the distinct interrupted code
	// so wrappers can tell "stopped" from "failed".
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	stopTelemetry, err := telOpts.Start()
	if err != nil {
		fail(err)
	}
	telemetry.Emit("sweep_start",
		telemetry.KV{K: "device", V: *deviceName},
		telemetry.KV{K: "kernel", V: *kernelName},
		telemetry.KV{K: "points", V: len(pts)},
		telemetry.KV{K: "trials", V: *trials},
		telemetry.KV{K: "seed", V: *seed})

	base := float64(sizes[0])
	var done atomic.Int64
	showProg := telemetry.ProgressActive()
	// Each (size, format) point is an independent campaign, so the grid
	// runs concurrently and the rows print in order afterwards.
	lines := make([]string, len(pts))
	err = exec.ForEachCtx(ctx, *workers, len(pts), func(i int) error {
		p := pts[i]
		kernel, scalePow, err := pickKernel(*kernelName, p.n, *seed)
		if err != nil {
			return err
		}
		// Keep the modeled machine workload a constant multiple of the
		// executed instance: ops grow as size^scalePow.
		ratio := pow(float64(p.n)/base, scalePow)
		w := mixedrel.NewWorkload(kernel, *opScale*ratio, *opScale/100*ratio)
		m, err := device.Map(w, p.f)
		if err != nil {
			return err
		}
		res, err := mixedrel.BeamExperiment{
			Mapping: m, Trials: *trials, Seed: *seed, Workers: *sampleWorkers,
			BehavioralDUE: *behavioralDUE, Context: ctx,
		}.Run()
		if err != nil {
			return err
		}
		lines[i] = fmt.Sprintf("%-6d  %-9v  %-12v  %-12.4g  %-12.4g  %-10.4g",
			p.n, p.f, m.Time.Round(1e6), res.FITSDC, res.FITDUE,
			mixedrel.MEBF(res.FITSDC, m.Time))
		if *strata > 0 {
			// The stratified injection campaign estimates the point's PVF
			// directly, with an honest interval — where the beam rows
			// above extrapolate from calibrated cross-sections.
			ic := mixedrel.InjectionCampaign{
				Kernel: kernel, Format: p.f, Faults: *pvfFaults, Seed: *seed,
				Workers: *sampleWorkers, Context: ctx,
				Sampling: &mixedrel.Sampling{
					Phases:      *strata,
					Adaptive:    *adaptive,
					CIHalfWidth: *ciHalfWidth,
				},
			}
			ires, err := ic.Run()
			if err != nil {
				return err
			}
			lines[i] += "  " + report.FormatCI(ires.StratifiedPVF, ires.PVFCILow, ires.PVFCIHigh)
		}
		if showProg {
			telemetry.Progressf("sweep: %d/%d points", done.Add(1), len(pts))
		}
		return nil
	})
	if stopErr := stopTelemetry(); stopErr != nil && err == nil {
		err = stopErr
	}
	if err != nil {
		if errors.Is(err, mixedrel.ErrInterrupted) || errors.Is(err, context.Canceled) {
			failInterrupted(err)
		}
		fail(err)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}

func pickDevice(name string) (mixedrel.Device, error) {
	switch strings.ToLower(name) {
	case "fpga", "zynq":
		return mixedrel.NewFPGA(), nil
	case "xeonphi", "phi", "knc":
		return mixedrel.NewXeonPhi(), nil
	case "gpu", "volta", "titanv":
		return mixedrel.NewGPU(), nil
	}
	return nil, fmt.Errorf("unknown device %q", name)
}

// pickKernel returns the kernel plus the exponent relating size to
// dynamic operation count (n^3 for the dense solvers, n^2 for the
// stencil and particle grids).
func pickKernel(name string, size int, seed uint64) (mixedrel.Kernel, int, error) {
	switch strings.ToLower(name) {
	case "mxm", "gemm":
		return mixedrel.NewGEMM(size, seed), 3, nil
	case "lud":
		return mixedrel.NewLUD(size, seed), 3, nil
	case "hotspot":
		return mixedrel.NewHotspot(size, 8, seed), 2, nil
	case "lavamd":
		return mixedrel.NewLavaMD(2, size, seed), 2, nil
	}
	return nil, 0, fmt.Errorf("unknown kernel %q", name)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}

func parseFormats(s string, device mixedrel.Device) ([]mixedrel.Format, error) {
	if s == "" {
		var out []mixedrel.Format
		for _, f := range mixedrel.Formats {
			if device.Supports(f) {
				out = append(out, f)
			}
		}
		return out, nil
	}
	var out []mixedrel.Format
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(strings.ToLower(part)) {
		case "half", "fp16":
			out = append(out, mixedrel.Half)
		case "bfloat16", "bf16":
			out = append(out, mixedrel.BFloat16)
		case "single", "fp32":
			out = append(out, mixedrel.Single)
		case "double", "fp64":
			out = append(out, mixedrel.Double)
		case "":
		default:
			return nil, fmt.Errorf("unknown format %q", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no formats given")
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

// failInterrupted reports a sweep stopped by SIGINT/SIGTERM: in-flight
// points drained cleanly, nothing was half-written, and the exit code
// (3) distinguishes "stopped on request" from a real failure (1).
func failInterrupted(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	fmt.Fprintln(os.Stderr, "sweep: interrupted; the sweep is deterministic, so a re-run with the same flags reproduces every point")
	os.Exit(3)
}

// failUsage reports a bad invocation: the error, then the flag set's
// usage text, then a non-zero exit (the conventional usage code 2).
func failUsage(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	flag.Usage()
	os.Exit(2)
}
