GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The parallel execution engine and the packages that drive it get an
# additional race-detector pass.
race:
	$(GO) test -race ./internal/exec/... ./internal/inject/... ./internal/beam/...

# verify is the tier-1 gate: build, vet, full tests, race pass.
verify: build vet test race

# bench records the benchmark suite as BENCH_<date>.json (see
# scripts/bench.sh for knobs).
bench:
	scripts/bench.sh
