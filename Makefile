GO ?= go

.PHONY: build test vet lint race verify bench bench-smoke bench-replay bench-sampling bench-telemetry bench-chaos smoke-telemetry stress stress-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint is the static-analysis gate: go vet plus mixedrelvet, the repo's
# own invariant checker (softfloat, bitsops, batchops, determinism,
# boundedgo, chaos, compiledreplay, panicsafety, hotalloc, telemetry —
# see DESIGN.md "Static invariants").
lint:
	scripts/lint.sh

# The deterministic scheduler means any package may run concurrently, so
# the race-detector pass covers the whole tree.
race:
	$(GO) test -race ./...

# bench-smoke runs every benchmark for exactly one iteration under the
# race detector: a cheap proof that benchmark code stays runnable and
# race-free without paying full measurement time.
bench-smoke:
	$(GO) test -race -run '^$$' -bench . -benchtime 1x ./...

# verify is the tier-1 gate: build, static analysis, full tests, race
# pass, benchmark smoke.
verify: build lint test race bench-smoke

# bench records the benchmark suite as BENCH_<date>.json (see
# scripts/bench.sh for knobs).
bench:
	scripts/bench.sh

# bench-sampling measures only the sampling-engine benchmarks: the
# stratified/adaptive campaign paths plus their custom metrics (samples
# spent to the CI target, realized uniform-vs-stratified reduction).
# Results print to stdout; use make bench for the recorded snapshot.
bench-sampling:
	$(GO) test -run '^$$' -bench 'StratifiedCampaign|AdaptiveCampaign|SamplingEfficiency' -benchtime 3x -benchmem -count 2 .

# smoke-telemetry proves the observe-only contract on a real campaign:
# identical carolfi output with telemetry off and on, plus schema
# validation of the JSONL event log (left at telemetry-smoke.jsonl for
# CI to upload).
smoke-telemetry:
	scripts/smoke_telemetry.sh

# bench-telemetry measures the cost of the observability stack: the
# same campaign benchmarked with telemetry off and fully on, with the
# ns/op delta gated (<2% by default; OVERHEAD_GATE to loosen).
bench-telemetry:
	scripts/bench_telemetry.sh

# bench-chaos measures the cost of the checkpoint I/O seam: the same
# checkpointed campaign against a bare in-memory filesystem and through
# the disarmed chaos layer, with the ns/op delta gated (<1% by default;
# OVERHEAD_GATE to loosen).
bench-chaos:
	scripts/bench_chaos.sh

# stress is the chaos soak harness: bounded rounds of campaign ->
# injected failure (crash kills, torn journal tails, I/O faults,
# cancellations, kernel panics) -> resume, asserting byte-identical
# final results, at high worker counts, under the race detector.
stress:
	$(GO) run -race ./cmd/mixedrelstress -rounds 50 -v

# stress-smoke is the time-bounded CI variant: few rounds, same
# scenario coverage, still under -race.
stress-smoke:
	$(GO) run -race ./cmd/mixedrelstress -rounds 12 -v

# bench-replay measures only the injection-campaign benchmarks — the
# subset the compiled-replay fast path accelerates — with enough
# iterations for a stable reading. Results print to stdout and are not
# recorded; use make bench for the snapshot.
bench-replay:
	$(GO) test -run '^$$' -bench 'Campaign' -benchtime 3000x -benchmem -count 3 .
