GO ?= go

.PHONY: build test vet lint race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint is the static-analysis gate: go vet plus mixedrelvet, the repo's
# own invariant checker (softfloat, bitsops, determinism, boundedgo —
# see DESIGN.md "Static invariants").
lint:
	scripts/lint.sh

# The deterministic scheduler means any package may run concurrently, so
# the race-detector pass covers the whole tree.
race:
	$(GO) test -race ./...

# verify is the tier-1 gate: build, static analysis, full tests, race
# pass.
verify: build lint test race

# bench records the benchmark suite as BENCH_<date>.json (see
# scripts/bench.sh for knobs).
bench:
	scripts/bench.sh
