package mixedrel_test

import (
	"strings"
	"testing"

	"mixedrel"
)

func TestPublicEndToEnd(t *testing.T) {
	gpu := mixedrel.NewGPU()
	k := mixedrel.NewGEMM(8, 42)
	w := mixedrel.NewWorkload(k, 1e6, 1e4)

	for _, f := range mixedrel.Formats {
		if !gpu.Supports(f) {
			t.Fatalf("GPU should support %v", f)
		}
		m, err := gpu.Map(w, f)
		if err != nil {
			t.Fatal(err)
		}
		res, err := mixedrel.BeamExperiment{Mapping: m, Trials: 150, Seed: 1}.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.FITSDC < 0 {
			t.Errorf("%v: negative FIT", f)
		}
		if mebf := mixedrel.MEBF(res.FITSDC, m.Time); mebf <= 0 {
			t.Errorf("%v: non-positive MEBF", f)
		}
	}
}

func TestPublicInjection(t *testing.T) {
	c := mixedrel.InjectionCampaign{
		Kernel: mixedrel.NewLUD(8, 3),
		Format: mixedrel.Half,
		Faults: 100,
		Seed:   2,
		Sites:  []mixedrel.Site{mixedrel.SiteOperand, mixedrel.SiteMemory},
	}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PVF < 0 || res.PVF > 1 {
		t.Errorf("PVF %v out of range", res.PVF)
	}
	pts := mixedrel.TRECurve(res.PVF, res.RelErrs, nil)
	if len(pts) == 0 {
		t.Error("empty TRE curve")
	}
}

func TestPublicXeonPhiRejectsHalf(t *testing.T) {
	phi := mixedrel.NewXeonPhi()
	if phi.Supports(mixedrel.Half) {
		t.Error("Xeon Phi must not support half")
	}
	if _, err := phi.Map(mixedrel.NewWorkload(mixedrel.NewGEMM(8, 1), 1, 1), mixedrel.Half); err == nil {
		t.Error("mapping half on the Phi should fail")
	}
}

func TestPublicGolden(t *testing.T) {
	k := mixedrel.NewMicro(mixedrel.MicroMUL, 2, 10, 5)
	out := mixedrel.Golden(k, mixedrel.Single)
	if len(out) != 2 {
		t.Fatalf("golden length %d", len(out))
	}
}

func TestReproduceUnknownID(t *testing.T) {
	if _, err := mixedrel.Reproduce("nope", mixedrel.DefaultReproConfig()); err == nil {
		t.Fatal("unknown experiment accepted")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error %q does not name the experiment", err)
	}
}

func TestReproduceOne(t *testing.T) {
	cfg := mixedrel.DefaultReproConfig()
	cfg.Quick = true
	tbl, err := mixedrel.Reproduce("table1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "table1" || len(tbl.Rows) != 2 {
		t.Errorf("unexpected table: id=%s rows=%d", tbl.ID, len(tbl.Rows))
	}
	var sb strings.Builder
	if err := tbl.WriteASCII(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "MxM") {
		t.Error("rendered table missing MxM row")
	}
}

func TestExperimentsList(t *testing.T) {
	exps := mixedrel.Experiments()
	if len(exps) != 25 {
		t.Fatalf("%d experiments, want 25 (every paper table and figure plus 6 extensions)", len(exps))
	}
}

func TestPublicHotspot(t *testing.T) {
	k := mixedrel.NewHotspot(8, 3, 1)
	out := mixedrel.Golden(k, mixedrel.Single)
	if len(out) != 64 {
		t.Fatalf("hotspot output length %d", len(out))
	}
	for _, d := range []mixedrel.Device{mixedrel.NewFPGA(), mixedrel.NewXeonPhi(), mixedrel.NewGPU()} {
		if _, err := d.Map(mixedrel.NewWorkload(k, 1e6, 1e3), mixedrel.Single); err != nil {
			t.Errorf("%s: cannot map Hotspot: %v", d.Name(), err)
		}
	}
}

func TestPublicBFloat16(t *testing.T) {
	if len(mixedrel.AllFormats) != 4 {
		t.Fatalf("AllFormats has %d entries", len(mixedrel.AllFormats))
	}
	gpu := mixedrel.NewGPU()
	if !gpu.Supports(mixedrel.BFloat16) {
		t.Fatal("GPU extension should accept bfloat16")
	}
	phi := mixedrel.NewXeonPhi()
	if phi.Supports(mixedrel.BFloat16) {
		t.Fatal("KNC must not accept bfloat16")
	}
	m, err := gpu.Map(mixedrel.NewWorkload(mixedrel.NewGEMM(8, 1), 1e6, 1e3), mixedrel.BFloat16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mixedrel.BeamExperiment{Mapping: m, Trials: 150, Seed: 2, Workers: 2}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FITSDC <= 0 {
		t.Error("bfloat16 campaign produced no errors at all")
	}
}

func TestPublicMBUAndAccumulation(t *testing.T) {
	phi := mixedrel.NewXeonPhi()
	m, err := phi.Map(mixedrel.NewWorkload(mixedrel.NewGEMM(8, 1), 1e6, 1), mixedrel.Single)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mixedrel.BeamExperiment{Mapping: m, Trials: 200, Seed: 3,
		MBU: mixedrel.MBU{P2: 0.2}}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.DUE == 0 {
		t.Error("MBU campaign on ECC'd hardware produced no DUEs")
	}

	fpga := mixedrel.NewFPGA()
	fm, err := fpga.Map(mixedrel.NewWorkload(mixedrel.NewGEMM(8, 1), 512, 64), mixedrel.Half)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := mixedrel.Accumulation{Mapping: fm, MaxFaults: 3, Rounds: 10, Seed: 4}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(acc.Points) != 3 {
		t.Errorf("accumulation points %d", len(acc.Points))
	}
}

func TestPublicFacadeSurface(t *testing.T) {
	// Exercise the remaining thin wrappers end-to-end.
	env := mixedrel.NewMachine(mixedrel.Half)
	if got := env.ToFloat64(env.Add(env.FromFloat64(1), env.FromFloat64(2))); got != 3 {
		t.Errorf("facade env 1+2 = %v", got)
	}

	for _, op := range []mixedrel.MicroOp{mixedrel.MicroADD, mixedrel.MicroMUL, mixedrel.MicroFMA} {
		if k := mixedrel.NewMicro(op, 2, 4, 1); k == nil {
			t.Fatal("nil micro kernel")
		}
	}
	if mixedrel.NewLavaMD(2, 2, 1).Name() != "LavaMD" || mixedrel.NewLUD(4, 1).Name() != "LUD" {
		t.Error("kernel names wrong through facade")
	}

	mnist := mixedrel.NewMNIST(1, 5)
	golden := mixedrel.Golden(mnist, mixedrel.Single)
	crit := mixedrel.ClassifyMNIST(mnist, golden, [][]float64{golden})
	if crit.SDCs != 1 || crit.Critical != 0 {
		t.Errorf("identical output misclassified: %+v", crit)
	}

	yolo := mixedrel.NewYOLO(5)
	yg := mixedrel.Golden(yolo, mixedrel.Single)
	ycrit := mixedrel.ClassifyYOLO(yolo, yg, [][]float64{yg})
	if ycrit.Tolerable != 1 {
		t.Errorf("identical YOLO output misclassified: %+v", ycrit)
	}

	pts := mixedrel.TRECurve(10, []float64{0.5}, nil)
	if len(pts) == 0 || pts[0].FIT != 10 {
		t.Errorf("TRECurve through facade wrong: %+v", pts)
	}

	tmr := mixedrel.NewTMR(mixedrel.NewGEMM(4, 1))
	if tmr.Name() != "MxM+TMR" {
		t.Error("TMR facade wrong")
	}
	abft := mixedrel.NewABFTGEMM(mixedrel.NewGEMM(4, 1))
	if abft.Name() != "MxM+ABFT" {
		t.Error("ABFT facade wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewABFTGEMM on non-GEMM did not panic")
			}
		}()
		mixedrel.NewABFTGEMM(mixedrel.NewLUD(4, 1))
	}()

	rep, err := mixedrel.EvaluateMitigation(tmr, mixedrel.NewGEMM(4, 1), mixedrel.Single, 30, 1)
	if err != nil || rep.Faults != 30 {
		t.Errorf("EvaluateMitigation: %v %+v", err, rep)
	}
}

func TestPublicReproduceAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep skipped in -short")
	}
	cfg := mixedrel.DefaultReproConfig()
	cfg.Quick = true
	cfg.Trials = 40
	cfg.Faults = 40
	cfg.Workers = 4
	var sb strings.Builder
	if err := mixedrel.ReproduceAll(cfg, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "[fig13]") || !strings.Contains(sb.String(), "[ext-mitigation]") {
		t.Error("ReproduceAll output incomplete")
	}
}
