// Package mixedrel evaluates the reliability of mixed-precision
// architectures under transient (soft) errors, reproducing the
// methodology of "Reliability Evaluation of Mixed-Precision
// Architectures" (dos Santos et al., HPCA 2019) in pure Go.
//
// The library provides:
//
//   - bit-accurate IEEE-754 half/single/double arithmetic with raw
//     bit-pattern access (Format, Bits, Env);
//   - the paper's workloads as precision-generic kernels (GEMM, LavaMD,
//     LUD, microbenchmarks, an MNIST-style CNN trained by
//     backpropagation, a YOLO-style detector) plus Hotspot and a
//     conjugate-gradient solver;
//   - device models of the three irradiated platforms — Xilinx
//     Zynq-7000 FPGA, Intel Xeon Phi 3120A, NVIDIA Titan V — that map
//     a workload to sensitive-resource exposure and an execution-time
//     estimate (NewFPGA, NewXeonPhi, NewGPU);
//   - a CAROL-FI-style single-bit-flip fault injector and a Monte-Carlo
//     neutron-beam campaign simulator (InjectionCampaign,
//     BeamExperiment);
//   - the paper's reliability metrics: FIT, MEBF, AVF/PVF, TRE
//     FIT-reduction curves, and CNN criticality classification;
//   - soft-error mitigations (TMR voting, ABFT-checksummed GEMM) with an
//     evaluation campaign (NewTMR, NewABFTGEMM, EvaluateMitigation);
//   - a reproduction harness with one experiment per paper table and
//     figure plus extension studies — bfloat16, multi-bit upsets vs
//     SECDED, FPGA fault accumulation, solver fault absorption
//     (Experiments, Reproduce).
//
// Quick start:
//
//	gpu := mixedrel.NewGPU()
//	k := mixedrel.NewGEMM(16, 42)
//	w := mixedrel.NewWorkload(k, 1e6, 1e4)
//	m, _ := gpu.Map(w, mixedrel.Half)
//	res, _ := mixedrel.BeamExperiment{Mapping: m, Trials: 2000, Seed: 1}.Run()
//	fmt.Println("FIT:", res.FITSDC, "MEBF:", mixedrel.MEBF(res.FITSDC, m.Time))
//
// Everything is deterministic in the seeds you pass; campaigns with the
// same configuration produce bit-identical results on every platform.
package mixedrel

import (
	"io"
	"time"

	"mixedrel/internal/arch"
	"mixedrel/internal/beam"
	"mixedrel/internal/core"
	"mixedrel/internal/exec"
	"mixedrel/internal/fp"
	"mixedrel/internal/fpga"
	"mixedrel/internal/gpu"
	"mixedrel/internal/inject"
	"mixedrel/internal/kernels"
	"mixedrel/internal/metrics"
	"mixedrel/internal/mitigate"
	"mixedrel/internal/report"
	"mixedrel/internal/xeonphi"
)

// Format is an IEEE-754 binary interchange format (Half, Single, Double).
type Format = fp.Format

// The three floating-point precisions the paper studies, plus the
// bfloat16 extension format.
const (
	Half     = fp.Half
	Single   = fp.Single
	Double   = fp.Double
	BFloat16 = fp.BFloat16
)

// Formats lists the paper's three precisions, narrowest first.
var Formats = fp.Formats

// AllFormats additionally includes the bfloat16 extension.
var AllFormats = fp.AllFormats

// Bits is a raw IEEE-754 encoding carried in a uint64; see Format for
// field access and bit flipping.
type Bits = fp.Bits

// Env performs arithmetic in one precision on raw Bits; kernels are
// written against it and fault injectors wrap it.
type Env = fp.Env

// NewMachine returns the fault-free reference Env for a format.
func NewMachine(f Format) Env { return fp.NewMachine(f) }

// Kernel is a precision-generic workload; see the New* constructors.
type Kernel = kernels.Kernel

// MicroOp selects the operation of a microbenchmark.
type MicroOp = kernels.MicroOp

// Microbenchmark operation kinds.
const (
	MicroADD = kernels.MicroADD
	MicroMUL = kernels.MicroMUL
	MicroFMA = kernels.MicroFMA
)

// NewGEMM returns the paper's MxM workload: an n x n matrix multiply.
func NewGEMM(n int, seed uint64) Kernel { return kernels.NewGEMM(n, seed) }

// NewLavaMD returns the Rodinia LavaMD particle-potential workload on a
// dim^3 grid of boxes with perBox particles each.
func NewLavaMD(dim, perBox int, seed uint64) Kernel {
	return kernels.NewLavaMD(dim, perBox, seed)
}

// NewLUD returns the Rodinia LUD workload: LU factorization of an n x n
// diagonally dominant system.
func NewLUD(n int, seed uint64) Kernel { return kernels.NewLUD(n, seed) }

// NewHotspot returns the Rodinia Hotspot workload: an n x n thermal
// stencil evolved for the given number of steps.
func NewHotspot(n, steps int, seed uint64) Kernel {
	return kernels.NewHotspot(n, steps, seed)
}

// NewCG returns a conjugate-gradient solve of an n x n symmetric
// positive-definite system with a fixed iteration count.
func NewCG(n, iters int, seed uint64) Kernel { return kernels.NewCG(n, iters, seed) }

// NewMicro returns a register-resident synthetic benchmark executing
// opsPerThread operations of one kind on each of threads threads.
func NewMicro(op MicroOp, threads, opsPerThread int, seed uint64) Kernel {
	return kernels.NewMicro(op, threads, opsPerThread, seed)
}

// MNIST is the LeNet-style digit classifier; beyond Kernel it exposes
// Classify and the clean-accuracy diagnostics.
type MNIST = kernels.MNIST

// NewMNIST builds and trains the MNIST classifier with the given test
// batch size.
func NewMNIST(batch int, seed uint64) *MNIST { return kernels.NewMNIST(batch, seed) }

// YOLO is the YOLO-style object detector; beyond Kernel it exposes
// Detections decoding.
type YOLO = kernels.YOLO

// NewYOLO builds the detector with a deterministic synthetic scene.
func NewYOLO(seed uint64) *YOLO { return kernels.NewYOLO(seed) }

// Detection is one decoded object detection.
type Detection = kernels.Detection

// Device models a hardware platform that compiles (maps) workloads.
type Device = arch.Device

// Workload pairs an executable kernel with paper-scale factors.
type Workload = arch.Workload

// NewWorkload builds a Workload; non-positive scales default to 1.
func NewWorkload(k Kernel, opScale, dataScale float64) Workload {
	return arch.NewWorkload(k, opScale, dataScale)
}

// Mapping is a compiled workload: exposure, timing, fault parameters.
type Mapping = arch.Mapping

// ResourceClass identifies a kind of sensitive hardware resource.
type ResourceClass = arch.ResourceClass

// Resource classes referenced by campaign results.
const (
	ConfigMemory   = arch.ConfigMemory
	RegisterFile   = arch.RegisterFile
	FunctionalUnit = arch.FunctionalUnit
	ControlLogic   = arch.ControlLogic
	MemorySRAM     = arch.MemorySRAM
)

// NewFPGA returns the Xilinx Zynq-7000 model.
func NewFPGA() Device { return fpga.New() }

// NewXeonPhi returns the Intel Xeon Phi 3120A (Knights Corner) model.
func NewXeonPhi() Device { return xeonphi.New() }

// NewGPU returns the NVIDIA Titan V (Volta) model.
func NewGPU() Device { return gpu.New() }

// BeamExperiment is a Monte-Carlo neutron-beam campaign over a Mapping.
type BeamExperiment = beam.Experiment

// BeamResult summarizes a beam campaign (FIT rates, outcome counts,
// per-SDC relative errors).
type BeamResult = beam.Result

// MBU configures multi-bit-upset probabilities for a BeamExperiment;
// with MBUs enabled, SECDED-protected resources contribute DUEs.
type MBU = beam.MBU

// Accumulation simulates FPGA configuration-fault pile-up without
// scrubbing (the regime the paper avoids by reprogramming after every
// observed error).
type Accumulation = beam.Accumulation

// AccumulationResult is the per-depth outcome curve of an Accumulation.
type AccumulationResult = beam.AccumulationResult

// InjectionCampaign is a CAROL-FI-style statistical fault-injection
// campaign over a kernel.
type InjectionCampaign = inject.Campaign

// InjectionResult summarizes an injection campaign (PVF, SDC errors).
type InjectionResult = inject.Result

// Site selects where an injection campaign's faults land.
type Site = inject.Site

// Injection fault sites. SiteControl corrupts control state (loop
// counters, indices, pointers) and is the behavioral source of
// crash/hang DUE outcomes.
const (
	SiteOperation = inject.SiteOperation
	SiteOperand   = inject.SiteOperand
	SiteMemory    = inject.SiteMemory
	SiteControl   = inject.SiteControl
)

// Outcome classifies one faulty execution.
type Outcome = inject.Outcome

// Campaign outcome classifications. CrashDUE and HangDUE are the
// behaviorally detected-unrecoverable outcomes: emulated segfaults/FP
// traps, and op-budget watchdog kills.
const (
	Masked   = inject.Masked
	SDC      = inject.SDC
	CrashDUE = inject.CrashDUE
	HangDUE  = inject.HangDUE
)

// Sampling configures the variance-reduction sampling engine of an
// InjectionCampaign: stratified allocation of the fault budget over
// (op-class x bit band x kernel phase) strata, optional Neyman-style
// adaptive refinement, and sequential early stopping on a confidence
// interval target.
type Sampling = inject.Sampling

// BitBand is a half-open range of bit positions, the bit axis of a
// stratified campaign.
type BitBand = inject.BitBand

// DefaultBitBands partitions a format's bits into low-mantissa,
// high-mantissa, exponent, and sign bands.
func DefaultBitBands(f Format) []BitBand { return inject.DefaultBitBands(f) }

// StratumResult is one stratum's share of a stratified campaign's
// result.
type StratumResult = inject.StratumResult

// Checkpoint makes a campaign crash-tolerant and resumable: classified
// samples are journaled to Path and a re-run with the same
// configuration completes only the missing ones, producing a
// byte-identical result. Usable on both InjectionCampaign and
// BeamExperiment.
type Checkpoint = exec.Checkpoint

// ErrPartialCampaign is returned by a checkpointed campaign that
// stopped before every sample was classified (Checkpoint.Limit);
// re-run the same campaign to resume.
var ErrPartialCampaign = exec.ErrPartial

// ErrInterrupted is the errors.Is target for campaigns stopped by
// context cancellation (InjectionCampaign.Context /
// BeamExperiment.Context): in-flight samples drained, the checkpoint
// journal — when there was one — was flushed and synced. The concrete
// error is an *Interrupted carrying the journaled-sample count.
var ErrInterrupted = exec.ErrInterrupted

// Interrupted is the concrete error of a cancelled campaign.
type Interrupted = exec.Interrupted

// NewTMR wraps any kernel in triple modular redundancy with bitwise
// majority voting.
func NewTMR(inner Kernel) Kernel { return mitigate.NewTMR(inner) }

// ABFTGEMM is a GEMM protected by Huang-Abraham checksums (detection
// plus single-element correction).
type ABFTGEMM = mitigate.ABFTGEMM

// NewABFTGEMM wraps a GEMM kernel (as returned by NewGEMM) with ABFT
// checksum protection. It panics if k is not a GEMM.
func NewABFTGEMM(k Kernel) *ABFTGEMM {
	g, ok := k.(*kernels.GEMM)
	if !ok {
		panic("mixedrel: NewABFTGEMM requires a kernel from NewGEMM")
	}
	return mitigate.NewABFTGEMM(g)
}

// MitigationReport summarizes a mitigation evaluation campaign.
type MitigationReport = mitigate.Report

// EvaluateMitigation injects faults into a mitigated kernel and reports
// the residual silent-corruption probability, the corrected/detected
// split, and the compute overhead relative to the unprotected baseline.
func EvaluateMitigation(mitigated, baseline Kernel, f Format, faults int, seed uint64) (*MitigationReport, error) {
	return mitigate.Evaluate(mitigated, baseline, f, faults, seed)
}

// MEBF returns the mean number of executions completed between failures
// for a FIT rate and per-execution time.
func MEBF(fitSDC float64, execTime time.Duration) float64 {
	return metrics.MEBF(fitSDC, execTime)
}

// TREPoint is one point of a FIT-vs-tolerated-relative-error curve.
type TREPoint = metrics.TREPoint

// TRECurve computes the FIT reduction as the output tolerance grows.
// Pass nil thresholds for the paper's sweep.
func TRECurve(fitSDC float64, relErrs []float64, tres []float64) []TREPoint {
	return metrics.TRECurve(fitSDC, relErrs, tres)
}

// ClassifyMNIST splits a campaign's SDC outputs into critical
// (classification changed) and tolerable.
func ClassifyMNIST(m *MNIST, golden []float64, faulty [][]float64) metrics.MNISTCriticality {
	return metrics.ClassifyMNIST(m, golden, faulty)
}

// ClassifyYOLO classifies a campaign's SDC outputs into the paper's
// tolerable / detection-changed / classification-changed taxonomy.
func ClassifyYOLO(y *YOLO, golden []float64, faulty [][]float64) metrics.YOLOCriticality {
	return metrics.ClassifyYOLO(y, golden, faulty)
}

// Golden runs a kernel fault-free and returns its decoded output.
func Golden(k Kernel, f Format) []float64 {
	return kernels.Decode(f, kernels.Golden(k, f))
}

// ReproConfig configures the reproduction harness.
type ReproConfig = core.Config

// DefaultReproConfig returns the paper-sized campaign configuration.
func DefaultReproConfig() ReproConfig { return core.DefaultConfig() }

// Experiment is one reproducible paper artifact (table or figure).
type Experiment = core.Definition

// Experiments lists every reproduced table and figure in paper order.
func Experiments() []Experiment { return core.Experiments }

// Reproduce runs the experiment with the given id ("table1".."fig13")
// and returns its report table.
func Reproduce(id string, cfg ReproConfig) (*report.Table, error) {
	d, ok := core.Get(id)
	if !ok {
		return nil, errUnknownExperiment(id)
	}
	return d.Run(cfg)
}

// ReproduceAll runs every experiment and renders the tables to w.
func ReproduceAll(cfg ReproConfig, w io.Writer) error {
	return core.RunAll(cfg, w)
}

// Table is a rendered experiment artifact.
type Table = report.Table

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "mixedrel: unknown experiment " + string(e)
}
